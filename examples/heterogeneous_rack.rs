//! Heterogeneous rack deployment: an XC7Z020 head (Arty Z7-20) next to
//! the half-size XC7Z010 fabric of an Arty Z7-10, with the placement
//! chosen by the cost-driven partitioner instead of greedy first-fit.
//!
//! At the footnote-2 16-bit width all three ODE circuits fit the head
//! board alone — so first-fit crams them there and leaves the second
//! fabric idle. `Partitioner::BalancedMakespan` searches every
//! layer→board assignment and puts the heavy layer2_2 + layer3_2 pair
//! on the big fabric with layer1 on the XC7Z010, roughly halving the
//! pipelined bottleneck. Logits are bit-identical either way: the
//! partitioner changes *where* stages run, never what they compute.
//!
//! ```text
//! cargo run --release --example heterogeneous_rack
//! ```

use odenet_suite::prelude::*;
use zynq_sim::cluster::StageResource;

fn main() {
    let spec = NetSpec::new(Variant::OdeNet, 56).with_classes(100);
    let net = Network::new(spec, 42);
    println!("architecture : {}", spec.display_name());

    let rack = || Cluster::new(vec![ARTY_Z7_20, ARTY_Z7_10], Interconnect::GIGABIT_ETHERNET);
    let build = |partitioner: Partitioner| {
        Engine::builder(&net)
            .cluster(rack())
            .precision(PlFormat::Q16 { frac: 10 })
            .schedule(Schedule::Pipelined)
            .partitioner(partitioner)
            .build()
            .expect("the rack carries AllOde at 16-bit")
    };

    // 1. Plan both strategies — zero numerics — and compare the
    //    per-board busy breakdown the balanced search optimizes.
    for partitioner in [Partitioner::FirstFit, Partitioner::BalancedMakespan] {
        let engine = build(partitioner);
        let plan = engine.cluster_plan().expect("cluster engines keep plans");
        println!("\n{partitioner:?}");
        println!("  plan       : {}", plan.describe());
        for (resource, busy) in plan.resource_busy() {
            let name = match resource {
                StageResource::Ps => "head PS".to_string(),
                StageResource::PsOn(k) => format!("board {k} PS"),
                StageResource::Pl(k) => format!("board {k} PL"),
            };
            println!("  busy       : {name:<10} {busy:.3}s/img");
        }
        println!(
            "  bottleneck : {:.3}s → batch-32 pipelined {:.2} img/s",
            plan.bottleneck_seconds(),
            32.0 / plan.batch_seconds(32, Schedule::Pipelined),
        );
    }

    // 2. Serve the same batch through both engines: throughput moves,
    //    logits do not.
    let ds = generate(&SynthConfig {
        classes: 100,
        per_class: 1,
        hw: 32,
        ..Default::default()
    });
    let xs: Vec<Tensor<f32>> = (0..8).map(|_| ds.images.item_tensor(0)).collect();
    let first_fit = build(Partitioner::FirstFit);
    let balanced = build(Partitioner::BalancedMakespan);
    let (ff_runs, ff) = first_fit.infer_batch_summary(&xs).expect("batch");
    let (bal_runs, bal) = balanced.infer_batch_summary(&xs).expect("batch");
    for (a, b) in ff_runs.iter().zip(&bal_runs) {
        assert_eq!(a.logits.as_slice(), b.logits.as_slice(), "bit-identical");
    }
    println!(
        "\nbatch of {}   : first-fit {:.2} img/s → balanced {:.2} img/s ({:.2}x), logits bit-identical",
        xs.len(),
        ff.throughput(),
        bal.throughput(),
        bal.throughput() / ff.throughput(),
    );
}
