//! Multi-board cluster deployment: shard ODENet-20 across two Arty
//! Z7-20 boards at the paper's Q20 word width — a placement no single
//! XC7Z020 admits — and pipeline a batch through the board chain.
//!
//! ```text
//! cargo run --release --example cluster_pipeline
//! ```

use odenet_suite::prelude::*;

fn main() {
    // 1. The full ODENet: all three shape-preserving layers are
    //    single-instance ODE blocks — everything *wants* to be on a
    //    PL, but at Q20 layer3_2 alone fills an entire XC7Z020.
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
    let net = Network::new(spec, 42);
    println!("architecture : {}", spec.display_name());

    // 2. Two Arty boards over gigabit Ethernet. Planning shards the
    //    placement board-by-board (first-fit in network order) with
    //    zero numerics, exactly like the single-board plan flow.
    let two_boards = || Cluster::homogeneous(&ARTY_Z7_20, 2, Interconnect::GIGABIT_ETHERNET);
    let plan = Engine::builder(&net)
        .cluster(two_boards())
        .plan_cluster()
        .expect("two XC7Z020s carry what one cannot");
    println!("plan         : {}", plan.describe());
    for shard in plan.shards() {
        let bram: f64 = shard.stages.iter().map(|s| s.bram36).sum();
        println!(
            "  board {}    : {:?} ({:.1} BRAM36)",
            shard.board, shard.target, bram
        );
    }
    println!(
        "predicted    : {:.3}s/img ({:.3}ms on the wire) — no inference ran",
        plan.total_seconds(),
        plan.transfer_seconds() * 1e3,
    );

    // 3. Build the engine and serve a pipelined batch: board 1 works
    //    on image i while board 0 and the head PS already run image
    //    i+1. Logits are bit-identical to a single-board execution of
    //    the same placement — sharding never touches the numerics.
    let engine = Engine::builder(&net)
        .cluster(two_boards())
        .schedule(Schedule::Pipelined)
        .build()
        .expect("validated above");
    println!("engine       : {}", engine.describe());

    let ds = generate(&SynthConfig {
        classes: 100,
        per_class: 1,
        hw: 32,
        ..Default::default()
    });
    let xs: Vec<Tensor<f32>> = (0..16).map(|_| ds.images.item_tensor(0)).collect();
    let (runs, pipelined) = engine.infer_batch_summary(&xs).expect("batch");
    println!(
        "batch of {}  : {:.2}s wall ({:.2} img/s), latency p50 {:.3}s / max {:.3}s",
        runs.len(),
        pipelined.wall_seconds,
        pipelined.throughput(),
        pipelined.latency_p50,
        pipelined.latency_max,
    );

    // 4. The additive schedule on the same engine config, for contrast.
    let sequential = Engine::builder(&net)
        .cluster(two_boards())
        .schedule(Schedule::Sequential)
        .build()
        .expect("same placement");
    let (_, additive) = sequential.infer_batch_summary(&xs).expect("batch");
    println!(
        "vs sequential: {:.2}s wall ({:.2} img/s) — pipelining is {:.2}x",
        additive.wall_seconds,
        additive.throughput(),
        pipelined.throughput() / additive.throughput(),
    );
}
