//! The paper's footnote-2 future work, end to end: a 16-bit PL datapath.
//!
//! "Although we used 32-bit fixed-point numbers, using reduced bit widths
//! (e.g., 16-bit or less) can implement more layers in PL part."
//!
//! These tests exercise the full reduced-width pipeline: quantize blocks
//! to `Fix16`, run the generic kernels, bound the divergence, and verify
//! the BRAM claim with the width-parametric resource model.

use odenet_suite::prelude::*;
use qfixed::{Fix, Fix16};
use rodenet::ResBlock;
use zynq_sim::resources::bram36_at_width;

fn block_and_input(layer: LayerName, seed: u64) -> (ResBlock, Tensor<f32>) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let block = ResBlock::new(&mut rng, layer, true);
    let (c, _) = layer.geometry();
    let x = Tensor::<f32>::from_fn(Shape4::new(1, c, 8, 8), |_, _, _, _| {
        rng.random::<f32>() - 0.5
    });
    (block, x)
}

/// A Q6.10 (16-bit) block evaluation stays usably close to float —
/// coarser than Q20, but structured like it.
#[test]
fn sixteen_bit_block_tracks_float() {
    let (block, x) = block_and_input(LayerName::Layer1, 31);
    let yf = block.f_eval(&x, 0.5, BnMode::OnTheFly);
    let q: Tensor<Fix16<10>> = Tensor::from_f32_tensor(&x);
    let y16 = block
        .quantize::<Fix16<10>>()
        .f_eval(&q, Fix16::<10>::from_f32(0.5));
    let d16 = yf.max_abs_diff(&y16.to_f32());
    // A freshly-initialized block has channels with tiny variance whose
    // BN 1/σ amplifies the ~1e-3 Q10 weight noise; a few units of
    // divergence on the worst element is the real cost of the format.
    assert!(d16 < 5.0, "16-bit divergence bounded: {d16}");
    // And strictly worse than the 32-bit Q20 path on the same input.
    let q20: Tensor<Fix<20>> = Tensor::from_f32_tensor(&x);
    let y20 = block
        .quantize::<Fix<20>>()
        .f_eval(&q20, Fix::<20>::from_f32(0.5));
    let d20 = yf.max_abs_diff(&y20.to_f32());
    assert!(d20 < d16, "Q20 ({d20}) beats Q6.10 ({d16})");
}

/// Multi-step ODE integration in 16-bit accumulates more error but does
/// not blow up.
#[test]
fn sixteen_bit_ode_forward_stable() {
    let (block, x) = block_and_input(LayerName::Layer1, 37);
    let yf = block.ode_forward(&x, 4, BnMode::OnTheFly);
    let q: Tensor<Fix16<10>> = Tensor::from_f32_tensor(&x);
    let y16 = block.quantize::<Fix16<10>>().ode_forward(&q, 4);
    let diff = yf.max_abs_diff(&y16.to_f32());
    assert!(diff < 10.0, "4-step 16-bit drift bounded: {diff}");
    assert!(y16.to_f32().as_slice().iter().all(|v| v.is_finite()));
}

/// The BRAM claim: at 16-bit, layer3_2 frees enough BRAM that *more
/// layers* fit — exactly the paper's stated motivation.
#[test]
fn sixteen_bit_frees_bram_for_more_layers() {
    // 32-bit: layer3_2 alone exhausts the device (Table 3: 100 %).
    let full32 = bram36_at_width(LayerName::Layer3_2, 16, 4);
    assert_eq!(full32, 140.0);
    // 16-bit: layer3_2 + layer2_2 + layer1 all fit together.
    let total16: f64 = [LayerName::Layer1, LayerName::Layer2_2, LayerName::Layer3_2]
        .iter()
        .map(|&l| bram36_at_width(l, 16, 2))
        .sum();
    assert!(
        total16 <= PYNQ_Z2.bram36 as f64,
        "all three ODE layers at 16-bit: {total16} BRAM36 ≤ 140"
    );
}

/// 8-bit is even smaller but the quantization error grows accordingly
/// (monotone width/accuracy trade-off at the format level).
#[test]
fn width_error_monotone() {
    let (block, x) = block_and_input(LayerName::Layer1, 41);
    let yf = block.f_eval(&x, 0.25, BnMode::OnTheFly);
    let err = |d: &Tensor<f32>| yf.max_abs_diff(d);
    let e20 = {
        let q: Tensor<Fix<20>> = Tensor::from_f32_tensor(&x);
        err(&block
            .quantize::<Fix<20>>()
            .f_eval(&q, Fix::<20>::from_f32(0.25))
            .to_f32())
    };
    let e12 = {
        let q: Tensor<Fix<12>> = Tensor::from_f32_tensor(&x);
        err(&block
            .quantize::<Fix<12>>()
            .f_eval(&q, Fix::<12>::from_f32(0.25))
            .to_f32())
    };
    let e10_16 = {
        let q: Tensor<Fix16<10>> = Tensor::from_f32_tensor(&x);
        err(&block
            .quantize::<Fix16<10>>()
            .f_eval(&q, Fix16::<10>::from_f32(0.25))
            .to_f32())
    };
    assert!(e20 <= e12, "Q20 {e20} ≤ Q12 {e12}");
    assert!(
        e12 <= e10_16 * 4.0,
        "32-bit Q12 roughly tracks 16-bit Q10 ({e12} vs {e10_16})"
    );
}

/// The acceptance case for the precision-polymorphic engine: at
/// `PlFormat::Q16`, `Offload::Auto` deploys a placement that is
/// *infeasible* at the paper's Q20 on the PYNQ-Z2 (anything sharing
/// the fabric with layer3_2) and runs it end to end — footnote 2's
/// "more layers in PL part" through the public API.
#[test]
fn sixteen_bit_auto_deploys_placement_infeasible_at_q20() {
    // ODENet keeps all three shape-preserving layers as single-instance
    // ODE blocks, so the width is the only thing gating the placement.
    let net = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(10), 99);
    let engine = Engine::builder(&net)
        .precision(PlFormat::Q16 { frac: 10 })
        .offload(Offload::Auto)
        .build()
        .expect("16-bit deployment builds");
    let target = engine.target();
    assert_eq!(target, OffloadTarget::AllOde, "planner exploits the width");
    assert!(
        !target.fits(&PYNQ_Z2, 16),
        "the same placement must NOT fit the board at 32-bit Q20"
    );
    assert!(target.fits_at(&PYNQ_Z2, 16, 2), "and must fit at 16-bit");
    // The identical request at the default Q20 cannot reach it: Auto
    // falls back to a §3.2 placement, and asking for it explicitly is
    // a typed error.
    let q20 = Engine::builder(&net)
        .offload(Offload::Auto)
        .build()
        .unwrap();
    assert_eq!(q20.target(), OffloadTarget::Layer1And22);
    let err = Engine::builder(&net)
        .offload(Offload::Target(OffloadTarget::AllOde))
        .build()
        .expect_err("AllOde at Q20 is infeasible");
    assert!(matches!(err, EngineError::InfeasiblePlacement { .. }));

    // End to end: plan timing is served without numerics and matches
    // the executed run; logits stay finite at the reduced width.
    let plan = engine.plan().expect("built-in backend");
    assert_eq!(plan.stages().len(), 3);
    assert!(plan.bram36_used() <= PYNQ_Z2.bram36 as f64);
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(12);
    let x = Tensor::<f32>::from_fn(Shape4::new(1, 3, 32, 32), |_, _, _, _| {
        rng.random::<f32>() - 0.5
    });
    let run = engine.infer(&x).expect("16-bit inference runs");
    assert_eq!(
        run.offloaded,
        vec![LayerName::Layer1, LayerName::Layer2_2, LayerName::Layer3_2]
    );
    assert!(run.logits.as_slice().iter().all(|v| v.is_finite()));
    assert!(
        (plan.total_seconds() - run.total_seconds()).abs() < 1e-12,
        "cached plan latency {} equals executed {}",
        plan.total_seconds(),
        run.total_seconds()
    );
    // Offloading all three stages at 16-bit beats the best Q20 config.
    let q20_run = q20.infer(&x).expect("Q20 inference");
    assert!(
        run.total_seconds() < q20_run.total_seconds(),
        "16-bit AllOde ({}) faster than Q20 Layer1And22 ({})",
        run.total_seconds(),
        q20_run.total_seconds()
    );
}

/// End to end: a trained network deployed at 16-bit keeps most of its
/// prediction agreement with the float model.
#[test]
fn sixteen_bit_deployment_agreement() {
    let cfg = SynthConfig {
        classes: 3,
        per_class: 12,
        hw: 16,
        noise: 0.15,
        jitter: 1,
        seed: 53,
    };
    let (train, test) = generate_split(&cfg, 6);
    let spec = NetSpec::new(Variant::Hybrid3, 20).with_classes(3);
    let mut net = Network::new(spec, 53);
    let tc = TrainConfig::quick(3, 12);
    let _ = train_epochs(&mut net, &train.images, &train.labels, None, None, tc);
    // Replace the ODE stage with its 16-bit quantized twin at inference.
    let block16 =
        net.stage(LayerName::Layer3_2).expect("layer3_2").blocks[0].quantize::<Fix16<10>>();
    let mut agree = 0usize;
    for i in 0..test.len() {
        let x = test.images.item_tensor(i);
        let float_pred = net.predict(&x, BnMode::OnTheFly)[0];
        // Manual hybrid: run stages up to layer3_2 in f32, the ODE stage
        // in Fix16, and the head in f32.
        let mut z = net.pre_forward(&x);
        for stage in &net.stages {
            if stage.blocks.is_empty() {
                continue;
            }
            if stage.name == LayerName::Layer3_2 {
                let zq: Tensor<Fix16<10>> = Tensor::from_f32_tensor(&z);
                z = block16.ode_forward(&zq, stage.plan.execs).to_f32();
            } else {
                for block in &stage.blocks {
                    z = if stage.plan.is_ode {
                        block.ode_forward(&z, stage.plan.execs, BnMode::OnTheFly)
                    } else {
                        block.residual_forward(&z, BnMode::OnTheFly)
                    };
                }
            }
        }
        let logits = net.fc_forward(&z);
        let q_pred = tensor::softmax::argmax(&logits)[0];
        agree += usize::from(q_pred == float_pred);
    }
    let rate = agree as f32 / test.len() as f32;
    assert!(rate > 0.7, "16-bit deployment agreement {rate}");
}
