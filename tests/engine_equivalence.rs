//! Equivalence suite for the `Engine` redesign.
//!
//! The engine replaced the free-function `run_hybrid_with` as the
//! deployment path. Its hybrid/software backends must be **bit-identical**
//! to the original execution semantics — same logits, same modelled
//! timing — across every placement × architecture × batch-norm mode.
//!
//! The reference below is a line-for-line reimplementation of the
//! original free-function loop (pre-engine), built from the same public
//! primitives. Comparing against it (rather than against the shim, which
//! now delegates to the engine) keeps this suite meaningful.

use odenet_suite::prelude::*;
use zynq_sim::datapath::{dma_words, OdeBlockAccel};

/// The original `run_hybrid_with` semantics, verbatim: PS stages in f32
/// with `ps_bn` statistics, target stages quantized on the fly and run
/// on the simulated circuit, conv1 always on-the-fly (the deployed
/// pre-processing), per-image timing from the calibrated models.
fn reference_hybrid(
    net: &Network,
    x: &Tensor<f32>,
    target: OffloadTarget,
    ps_bn: BnMode,
    ps: &PsModel,
    pl: &PlModel,
    board: &zynq_sim::Board,
) -> (Tensor<f32>, f64, f64, u64) {
    let offloaded: Vec<LayerName> = target.layers().to_vec();
    let mut ps_cycles: u64 =
        ps.block_exec_cycles(LayerName::Conv1, false) + ps.block_exec_cycles(LayerName::Fc, false);
    ps_cycles += ps.runtime_overhead_cycles();
    let mut pl_seconds = 0.0f64;
    let mut dma = 0u64;

    let mut z = net.pre_forward(x);
    for stage in &net.stages {
        if stage.blocks.is_empty() {
            continue;
        }
        let on_pl = offloaded.contains(&stage.name);
        for block in &stage.blocks {
            if on_pl {
                assert_eq!(stage.blocks.len(), 1, "only single-instance stages offload");
                let accel = OdeBlockAccel::new(block, pl.parallelism, board);
                let zq: Tensor<qfixed::Q20> = Tensor::from_f32_tensor(&z);
                let execs = if stage.plan.is_ode {
                    stage.plan.execs
                } else {
                    1
                };
                let run = accel.run_stage(&zq, execs);
                dma += dma_words(stage.name);
                pl_seconds += run.seconds;
                z = run.output.to_f32();
            } else {
                z = if stage.plan.is_ode {
                    block.ode_forward(&z, stage.plan.execs, ps_bn)
                } else {
                    block.residual_forward(&z, ps_bn)
                };
                ps_cycles +=
                    stage.plan.execs as u64 * ps.block_exec_cycles(stage.name, stage.plan.is_ode);
            }
        }
    }
    let logits = net.fc_forward(&z);
    (logits, board.ps_seconds(ps_cycles), pl_seconds, dma)
}

fn image(seed: u64) -> Tensor<f32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_fn(Shape4::new(1, 3, 32, 32), |_, _, _, _| {
        rng.random::<f32>() - 0.5
    })
}

/// The acceptance matrix: every placement × {ResNet, rODENet-3, ODENet}
/// × both BN modes. Where the placement is deployable the engine must
/// be bit-identical to the reference; where it is not, the builder must
/// refuse with a typed error (the original code asserted, or — worse —
/// silently under-reported removed layers as offloaded).
#[test]
fn engine_bit_identical_to_legacy_across_matrix() {
    let ps = PsModel::Calibrated;
    let pl = PlModel::default();
    let mut deployable = 0usize;
    let mut rejected = 0usize;
    for (vi, variant) in [Variant::ResNet, Variant::ROdeNet3, Variant::OdeNet]
        .into_iter()
        .enumerate()
    {
        let spec = NetSpec::new(variant, 20).with_classes(10);
        let net = Network::new(spec, 1000 + vi as u64);
        for target in OffloadTarget::ALL {
            for bn in [BnMode::OnTheFly, BnMode::Running] {
                let engine = Engine::builder(&net)
                    .board(&PYNQ_Z2)
                    .offload(Offload::Target(target))
                    .ps_model(ps)
                    .pl_model(pl)
                    .bn_mode(bn)
                    .build();
                let valid =
                    target.applicable_extended(&spec) && target.fits(&PYNQ_Z2, pl.parallelism);
                match engine {
                    Ok(engine) => {
                        assert!(valid, "{variant}/{target:?} should have been rejected");
                        deployable += 1;
                        let x = image(7 + vi as u64);
                        let run = engine.infer(&x).expect("valid engine runs");
                        let (logits, ps_s, pl_s, dma) =
                            reference_hybrid(&net, &x, target, bn, &ps, &pl, &PYNQ_Z2);
                        assert_eq!(
                            run.logits.as_slice(),
                            logits.as_slice(),
                            "{variant}/{target:?}/{bn:?}: logits must be bit-identical"
                        );
                        assert_eq!(run.ps_seconds, ps_s, "{variant}/{target:?}/{bn:?} PS time");
                        assert_eq!(run.pl_seconds, pl_s, "{variant}/{target:?}/{bn:?} PL time");
                        assert_eq!(run.dma_words, dma, "{variant}/{target:?}/{bn:?} DMA");
                        assert_eq!(run.offloaded, target.layers().to_vec());
                    }
                    Err(e) => {
                        assert!(
                            !valid,
                            "{variant}/{target:?}/{bn:?}: spurious rejection: {e}"
                        );
                        rejected += 1;
                    }
                }
            }
        }
    }
    // 3 variants × 8 placements × 2 modes = 48 combos; ODENet accepts
    // the five §3.2 placements (the three layer3_2-sharing combos need
    // a reduced word width — infeasible at the default Q20), rODENet-3
    // three (None/Layer1/Layer32), ResNet only None.
    let combos = 3 * OffloadTarget::ALL.len() * 2;
    assert_eq!(combos, 48);
    assert_eq!(deployable, 2 * (5 + 3 + 1), "deployable combos");
    assert_eq!(rejected, combos - deployable, "rejected combos");
}

/// The deprecated shims must agree with the engine exactly (they
/// delegate, so this pins the shim wiring — argument order, BN mode,
/// backend choice).
#[test]
#[allow(deprecated)]
fn legacy_shims_delegate_faithfully() {
    let net = Network::new(NetSpec::new(Variant::ROdeNet3, 20).with_classes(10), 4);
    let ps = PsModel::Calibrated;
    let pl = PlModel::default();
    let x = image(11);
    for bn in [BnMode::OnTheFly, BnMode::Running] {
        let legacy = run_hybrid_with(&net, &x, OffloadTarget::Layer32, bn, &ps, &pl, &PYNQ_Z2);
        let engine = Engine::builder(&net)
            .offload(Offload::Target(OffloadTarget::Layer32))
            .bn_mode(bn)
            .build()
            .unwrap();
        let run = engine.infer(&x).unwrap();
        assert_eq!(legacy.logits.as_slice(), run.logits.as_slice());
        assert_eq!(legacy.ps_seconds, run.ps_seconds);
        assert_eq!(legacy.pl_seconds, run.pl_seconds);
        assert_eq!(legacy.dma_words, run.dma_words);
        assert_eq!(legacy.offloaded, run.offloaded);
    }
    let sw = run_hybrid(&net, &x, OffloadTarget::None, &ps, &pl, &PYNQ_Z2);
    let engine = Engine::builder(&net)
        .offload(Offload::Target(OffloadTarget::None))
        .build()
        .unwrap();
    let run = engine.infer(&x).unwrap();
    assert_eq!(sw.logits.as_slice(), run.logits.as_slice());
    assert_eq!(sw.ps_seconds, run.ps_seconds);
    assert_eq!(run.backend, "ps-software");
}

/// The plan's cached Table 5 row is the same timing an actual
/// execution reports — `latency_report()` may be served without
/// running numerics precisely because the model is input-independent.
#[test]
fn latency_report_matches_execution() {
    for (variant, target) in [
        (Variant::ROdeNet3, OffloadTarget::Layer32),
        (Variant::OdeNet, OffloadTarget::Layer1And22),
        (Variant::ResNet, OffloadTarget::None),
    ] {
        let net = Network::new(NetSpec::new(variant, 20).with_classes(10), 77);
        let engine = Engine::builder(&net)
            .offload(Offload::Target(target))
            .build()
            .expect("deployable");
        let cached = engine.latency_report().expect("built-in backend").clone();
        let run = engine.infer(&image(3)).expect("runs");
        assert!(
            (cached.total_w_pl - run.total_seconds()).abs() < 1e-12,
            "{variant}/{target:?}: cached {} vs executed {}",
            cached.total_w_pl,
            run.total_seconds()
        );
        let plan = engine.plan().expect("built-in backend");
        assert_eq!(plan.dma_words(), run.dma_words, "{variant}/{target:?} DMA");
        assert!((plan.pl_seconds() - run.pl_seconds).abs() < 1e-12);
        assert!((plan.ps_seconds() - run.ps_seconds).abs() < 1e-12);
    }
}

/// `infer_batch` returns per-image reports identical to per-image
/// `infer` — batching only amortizes setup, never changes results.
#[test]
fn batch_matches_single_inference() {
    let net = Network::new(NetSpec::new(Variant::ROdeNet3, 20).with_classes(10), 5);
    let engine = Engine::builder(&net).build().unwrap();
    let xs: Vec<Tensor<f32>> = (0..4).map(|i| image(50 + i)).collect();
    let batch = engine.infer_batch(&xs).unwrap();
    for (x, run) in xs.iter().zip(&batch) {
        let single = engine.infer(x).unwrap();
        assert_eq!(single.logits.as_slice(), run.logits.as_slice());
        assert_eq!(single.total_seconds(), run.total_seconds());
    }
}

/// A one-board `Cluster` is the degenerate sharding: across the same
/// placement × architecture × batch-norm matrix as the legacy
/// equivalence test, the cluster backend must be **bit- and
/// timing-identical** to the hybrid engine on that board — sharding
/// machinery (timeline, hand-off accounting, per-board circuits) must
/// add exactly nothing when there is nothing to shard.
#[test]
fn single_board_cluster_matches_hybrid_across_matrix() {
    let one_board = || Cluster::homogeneous(&PYNQ_Z2, 1, Interconnect::GIGABIT_ETHERNET);
    let mut deployable = 0usize;
    for (vi, variant) in [Variant::ResNet, Variant::ROdeNet3, Variant::OdeNet]
        .into_iter()
        .enumerate()
    {
        let spec = NetSpec::new(variant, 20).with_classes(10);
        let net = Network::new(spec, 3000 + vi as u64);
        for target in OffloadTarget::ALL {
            for bn in [BnMode::OnTheFly, BnMode::Running] {
                let hybrid = Engine::builder(&net)
                    .offload(Offload::Target(target))
                    .bn_mode(bn)
                    .build();
                let cluster = Engine::builder(&net)
                    .cluster(one_board())
                    .offload(Offload::Target(target))
                    .bn_mode(bn)
                    .build();
                match (hybrid, cluster) {
                    (Ok(h), Ok(c)) => {
                        deployable += 1;
                        let x = image(40 + vi as u64);
                        let a = h.infer(&x).expect("hybrid runs");
                        let b = c.infer(&x).expect("cluster runs");
                        assert_eq!(
                            a.logits.as_slice(),
                            b.logits.as_slice(),
                            "{variant}/{target:?}/{bn:?}: logits"
                        );
                        assert_eq!(a.ps_seconds, b.ps_seconds, "{variant}/{target:?} PS");
                        assert_eq!(a.pl_seconds, b.pl_seconds, "{variant}/{target:?} PL");
                        assert_eq!(a.dma_words, b.dma_words, "{variant}/{target:?} DMA");
                        assert_eq!(a.offloaded, b.offloaded);
                        // The sequential batch summary folds identically.
                        let xs = vec![x.clone(), image(41)];
                        let (_, sh) = h.infer_batch_summary(&xs).unwrap();
                        let (_, sc) = c.infer_batch_summary(&xs).unwrap();
                        assert_eq!(sh.wall_seconds, sc.wall_seconds);
                        assert_eq!(sh.latency_p50, sc.latency_p50);
                    }
                    (Err(_), Err(_)) => {}
                    (h, c) => panic!(
                        "{variant}/{target:?}/{bn:?}: hybrid {:?} vs cluster {:?} disagree",
                        h.is_ok(),
                        c.is_ok()
                    ),
                }
            }
        }
    }
    assert_eq!(
        deployable,
        2 * (5 + 3 + 1),
        "same deployable set as the legacy matrix"
    );
}

/// §3.2 / Table 3 at conv_x32: the circuit misses the fabric (and the
/// smaller layers cannot even instantiate 32 units) — the builder must
/// reject every placement at that parallelism instead of asserting.
#[test]
fn parallelism_32_is_infeasible() {
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(10);
    let net = Network::new(spec, 6);
    for target in [
        OffloadTarget::Layer1,
        OffloadTarget::Layer22,
        OffloadTarget::Layer1And22,
        OffloadTarget::Layer32,
    ] {
        let err = Engine::builder(&net)
            .offload(Offload::Target(target))
            .pl_model(PlModel { parallelism: 32 })
            .build()
            .expect_err("conv_x32 does not deploy");
        assert_eq!(
            err,
            EngineError::InfeasiblePlacement {
                target,
                parallelism: 32
            }
        );
    }
    // The planner-driven engine degrades gracefully to pure software.
    let auto = Engine::builder(&net)
        .offload(Offload::Auto)
        .pl_model(PlModel { parallelism: 32 })
        .build()
        .expect("Auto falls back to software");
    assert_eq!(auto.target(), OffloadTarget::None);
}

/// Builder validation: malformed inputs are typed errors, not panics.
#[test]
fn input_validation_cases() {
    let net = Network::new(NetSpec::new(Variant::ROdeNet3, 20).with_classes(10), 8);
    let engine = Engine::builder(&net).build().unwrap();
    for bad in [
        Shape4::new(1, 1, 32, 32), // wrong channels
        Shape4::new(1, 3, 2, 32),  // degenerate height
    ] {
        let err = engine
            .infer(&Tensor::<f32>::zeros(bad))
            .expect_err("rejected");
        assert_eq!(err, EngineError::ShapeMismatch { got: bad });
    }
    // A batch with one malformed item fails up front, before any work.
    let xs = vec![image(1), Tensor::<f32>::zeros(Shape4::new(1, 1, 32, 32))];
    assert!(matches!(
        engine.infer_batch(&xs),
        Err(EngineError::ShapeMismatch { .. })
    ));
}
