//! Acceptance suite for the replication layer (ISSUE 7).
//!
//! The pinned claims:
//!
//! * **Stage replication** — ODENet-20 at Q20 on a 3×Arty Z7-20 rack
//!   at conv_x8 (where a 2-board placement is PL-bound), replicating
//!   the bottleneck ODE stage yields batch-32 pipelined throughput
//!   ≥ 1.3× the best unreplicated 2-board placement, with
//!   bit-identical logits.
//! * **Placement groups** — on a 4-board rack, two data-parallel
//!   placement groups reach ≥ 1.8× a single group's goodput at 1.2×
//!   offered load in [`Engine::load_sweep`].
//! * **Scheduler monotonicity** (proptest) — replicating any stage of
//!   any timeline onto fresh fabric never worsens the pipelined
//!   batch-32 makespan.
//! * **Numerics** — replication decides *where and when* an image
//!   runs, never *what*: every replicated deployment's logits are
//!   bit-identical to a single-board hybrid reference.

use odenet_suite::prelude::*;
use proptest::prelude::*;
use zynq_sim::cluster::{pipelined_schedule, StageTiming};

fn image(seed: u64) -> Tensor<f32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_fn(Shape4::new(1, 3, 32, 32), |_, _, _, _| {
        rng.random::<f32>() - 0.5
    })
}

fn rack(boards: usize) -> Cluster {
    Cluster::homogeneous(&ARTY_Z7_20, boards, Interconnect::GIGABIT_ETHERNET)
}

/// A single-board hybrid running the same placement on a fictitious
/// big-BRAM fabric: the numerics oracle every replicated deployment
/// must match bit for bit.
fn reference_engine(net: &Network) -> Engine<'_> {
    let mut big = ARTY_Z7_20;
    big.bram36 *= 4;
    Engine::builder(net)
        .board(&big)
        .offload(Offload::Target(OffloadTarget::AllOde))
        .build()
        .expect("the enlarged fabric fits all three circuits")
}

/// Acceptance pin 1: at conv_x8 the best 2-board placement is
/// PL-bound (layer1 + layer2_2 share a fabric at 0.177 s/img while the
/// head PS sits at 0.136 s/img), so doubling the bottleneck stage's
/// fabric buys real throughput: ≥ 1.3× batch-32 — and the logits do
/// not move by a single bit.
#[test]
fn replicating_the_bottleneck_stage_beats_two_boards_by_1_3x() {
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
    let net = Network::new(spec, 2024);
    let x8 = PlModel { parallelism: 8 };

    let unreplicated = Engine::builder(&net)
        .cluster(rack(2))
        .pl_model(x8)
        .schedule(Schedule::Pipelined)
        .partitioner(Partitioner::BalancedMakespan)
        .build()
        .expect("the 2-board baseline plans");
    let replicated = Engine::builder(&net)
        .cluster(rack(3))
        .pl_model(x8)
        .schedule(Schedule::Pipelined)
        .partitioner(Partitioner::BalancedMakespan)
        .replication(Replication::Stage(LayerName::Layer1, 2))
        .build()
        .expect("the replicated rack plans");

    let base = unreplicated.cluster_plan().expect("keeps its plan");
    let plan = replicated.cluster_plan().expect("keeps its plan");
    // The replica is real: two boards carry layer1's circuit and the
    // one-time weight broadcast is priced (but not billed per image).
    let rp = plan.replica_plan().expect("a replicated plan");
    assert_eq!(rp.stage_replicas.len(), 1);
    assert_eq!(rp.stage_replicas[0].0, LayerName::Layer1);
    assert_eq!(rp.stage_replicas[0].1.len(), 2);
    assert!(rp.broadcast_seconds > 0.0);
    assert!(plan.describe().contains("layer1×2"), "{}", plan.describe());

    let ratio =
        base.batch_seconds(32, Schedule::Pipelined) / plan.batch_seconds(32, Schedule::Pipelined);
    assert!(
        ratio >= 1.3,
        "batch-32 speedup {ratio:.3} < 1.3 (pinned acceptance)"
    );

    // The replicated rack lands on the head PS's floor — the same wall
    // the paper's PS–PL split hits once the fabric stops being the
    // bottleneck.
    let ps_busy = plan
        .resource_busy()
        .iter()
        .find(|(r, _)| matches!(r, StageResource::Ps))
        .map(|(_, b)| *b)
        .expect("the head PS is always busy");
    assert!((plan.bottleneck_seconds() - ps_busy).abs() < 1e-12);

    let reference = reference_engine(&net);
    for seed in 0..3u64 {
        let x = image(seed);
        let a = replicated.infer(&x).expect("replicated rack runs");
        let b = unreplicated.infer(&x).expect("baseline runs");
        let c = reference.infer(&x).expect("reference runs");
        assert_eq!(a.logits.as_slice(), c.logits.as_slice(), "seed {seed}");
        assert_eq!(b.logits.as_slice(), c.logits.as_slice(), "seed {seed}");
    }
}

/// Acceptance pin 2: placement groups replicate the PS too — the only
/// way past the head ARM's busy floor. Two groups on a 4-board rack
/// sustain ≥ 1.8× a single group's goodput at 1.2× offered load.
#[test]
fn placement_groups_double_goodput_past_the_ps_floor() {
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
    let net = Network::new(spec, 2024);

    let single = Engine::builder(&net)
        .cluster(rack(2))
        .schedule(Schedule::Pipelined)
        .build()
        .expect("one group plans");
    let grouped = Engine::builder(&net)
        .cluster(rack(4))
        .schedule(Schedule::Pipelined)
        .replication(Replication::Placement(2))
        .build()
        .expect("two groups plan");

    let plan = grouped.cluster_plan().expect("keeps its plan");
    let rp = plan.replica_plan().expect("a replicated plan");
    assert_eq!(rp.groups, vec![vec![0, 1], vec![2, 3]]);

    let sweep = LoadSweep::default();
    let overload = |points: &[LoadPoint]| {
        let p = points.last().expect("the default grid is non-empty");
        assert!((p.fraction - 1.2).abs() < 1e-12, "grid pinned at 1.2×");
        p.report.goodput
    };
    let one = overload(&single.load_sweep(&sweep).expect("single group serves"));
    let two = overload(&grouped.load_sweep(&sweep).expect("grouped rack serves"));
    assert!(
        two >= 1.8 * one,
        "grouped goodput {two:.2} img/s < 1.8× single group's {one:.2} img/s"
    );

    // Same oracle as every other scale-out change: the logits are the
    // single-board hybrid's, bit for bit, whichever group serves.
    let reference = reference_engine(&net);
    for seed in 0..3u64 {
        let x = image(seed);
        let a = grouped.infer(&x).expect("grouped rack runs");
        let b = reference.infer(&x).expect("reference runs");
        assert_eq!(a.logits.as_slice(), b.logits.as_slice(), "seed {seed}");
    }
}

/// `Replication::Auto` must never lose to `Replication::None` — it
/// keeps a replicated plan only on strict improvement.
#[test]
fn auto_never_loses_to_unreplicated() {
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
    let net = Network::new(spec, 7);
    for boards in [2usize, 3, 4] {
        let auto = Engine::builder(&net)
            .cluster(rack(boards))
            .schedule(Schedule::Pipelined)
            .replication(Replication::Auto)
            .build()
            .expect("auto plans");
        let none = Engine::builder(&net)
            .cluster(rack(boards))
            .schedule(Schedule::Pipelined)
            .build()
            .expect("baseline plans");
        let a = auto
            .cluster_plan()
            .expect("plan")
            .batch_seconds(32, Schedule::Pipelined);
        let n = none
            .cluster_plan()
            .expect("plan")
            .batch_seconds(32, Schedule::Pipelined);
        assert!(a <= n + 1e-12, "{boards} boards: auto {a} vs none {n}");
    }
}

/// A random **chain**: every stage on its own resource (stage `s` on
/// `Pl(s)`, one randomly chosen stage on the head PS) — the shape a
/// sharded placement's offloaded segments take. Distinct resources
/// matter: when the replicated stage's primary is *shared* with
/// another stage, greedy list scheduling admits classic Graham timing
/// anomalies (a faster upstream can reshuffle a shared resource into a
/// slightly worse interleaving), which is exactly why
/// `Replication::Auto` only keeps a replicated plan on strict
/// measured improvement.
fn any_chain() -> impl Strategy<Value = Vec<StageTiming>> {
    (
        prop::collection::vec((0.001f64..0.5, 0.0f64..0.01), 1..8),
        0usize..8,
    )
        .prop_map(|(stages, ps_sel)| {
            let ps = ps_sel % stages.len();
            stages
                .into_iter()
                .enumerate()
                .map(|(s, (seconds, transfer_in))| StageTiming {
                    resource: if s == ps {
                        StageResource::Ps
                    } else {
                        StageResource::Pl(s)
                    },
                    layer: None,
                    seconds,
                    transfer_in,
                    replicas: Vec::new(),
                })
                .collect()
        })
}

proptest! {
    /// Replicating any one stage of a chain onto fresh fabric never
    /// worsens the pipelined batch-32 makespan: the round-robin
    /// replica slots only ever admit an image earlier than the single
    /// resource would, and the scheduler's per-stage FIFO keeps the
    /// extra capacity from reshuffling downstream work.
    #[test]
    fn replication_never_worsens_the_pipelined_makespan(
        timeline in any_chain(),
        stage_sel in 0usize..8,
        replicas in 2usize..5,
    ) {
        let before = pipelined_schedule(&timeline, 32).makespan;
        let mut replicated = timeline.clone();
        let idx = stage_sel % replicated.len();
        // Fresh fabrics: boards 10+ are untouched by any_timeline's
        // resources, so each extra replica is genuinely new capacity.
        let primary = replicated[idx].resource;
        replicated[idx].replicas = std::iter::once(primary)
            .chain((0..replicas - 1).map(|j| StageResource::Pl(10 + j)))
            .collect();
        let after = pipelined_schedule(&replicated, 32).makespan;
        prop_assert!(
            after <= before + 1e-9,
            "replicating stage {idx} ({primary:?}) worsened {before} → {after}"
        );
    }
}

/// Bit-identity matrix: replication modes × placements never move a
/// logit relative to the unreplicated cluster on the same rack.
#[test]
fn replication_matrix_is_bit_identical() {
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(10);
    let net = Network::new(spec, 99);
    let x8 = PlModel { parallelism: 8 };
    let reference = reference_engine(&net);
    let engines = [
        Engine::builder(&net)
            .cluster(rack(3))
            .pl_model(x8)
            .replication(Replication::Stage(LayerName::Layer1, 2))
            .build()
            .expect("stage×2 on layer1"),
        Engine::builder(&net)
            .cluster(rack(3))
            .pl_model(x8)
            .replication(Replication::Stage(LayerName::Layer2_2, 2))
            .build()
            .expect("stage×2 on layer2_2"),
        Engine::builder(&net)
            .cluster(rack(4))
            .pl_model(x8)
            .partitioner(Partitioner::BalancedMakespan)
            .replication(Replication::Stage(LayerName::Layer2_2, 3))
            .build()
            .expect(
                "stage×3 on layer2_2 (layer3_2 fills a whole board, so \
                     the three carriers are the other three)",
            ),
        Engine::builder(&net)
            .cluster(rack(4))
            .replication(Replication::Placement(2))
            .build()
            .expect("two placement groups"),
        Engine::builder(&net)
            .cluster(rack(4))
            .replication(Replication::Auto)
            .build()
            .expect("auto"),
    ];
    for (i, engine) in engines.iter().enumerate() {
        for seed in 0..2u64 {
            let x = image(seed);
            let a = engine.infer(&x).expect("replicated rack runs");
            let b = reference.infer(&x).expect("reference runs");
            assert_eq!(
                a.logits.as_slice(),
                b.logits.as_slice(),
                "engine {i}, seed {seed}"
            );
        }
    }
}

/// The `ShardInfeasible` hint names the replication escape hatch when
/// one more board would make the placement shard.
#[test]
fn shard_infeasible_hints_at_replication() {
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(10);
    let net = Network::new(spec, 1);
    let err = Engine::builder(&net)
        .cluster(rack(1))
        .offload(Offload::Target(OffloadTarget::AllOde))
        .build()
        .expect_err("AllOde at Q20 does not fit one XC7Z020");
    let msg = err.to_string();
    assert!(
        msg.contains("Replication::Stage("),
        "the error should point at the replication API: {msg}"
    );
}
