//! End-to-end system tests: train in float on the PS side, deploy the
//! hot block to the simulated PL, and verify the whole pipeline —
//! functionally (accuracy survives quantized offload) and structurally
//! (timing decomposition, bit-exactness, planner choices).

use odenet_suite::prelude::*;
use qfixed::Q20;
use rodenet::ResBlock;
use zynq_sim::datapath::OdeBlockAccel;

fn train_small(variant: Variant, seed: u64, epochs: usize) -> (Network, cifar_data::Dataset) {
    let cfg = SynthConfig {
        classes: 4,
        per_class: 18,
        hw: 16,
        noise: 0.15,
        jitter: 1,
        seed,
    };
    let (train, test) = generate_split(&cfg, 6);
    let spec = NetSpec::new(variant, 20).with_classes(4);
    let mut net = Network::new(spec, seed);
    let mut tc = TrainConfig::quick(epochs, 12);
    tc.seed = seed;
    let _ = train_epochs(&mut net, &train.images, &train.labels, None, None, tc);
    (net, test)
}

/// The full life cycle: float training → Q20 PL deployment through a
/// reused [`Engine`]. Hybrid predictions must agree with the float
/// model on the vast majority of samples, and both must beat chance.
#[test]
fn train_then_deploy_rodenet3() {
    let (net, test) = train_small(Variant::ROdeNet3, 7, 6);
    let engine = Engine::builder(&net)
        .board(&PYNQ_Z2)
        .offload(Offload::Target(OffloadTarget::Layer32))
        .build()
        .expect("layer3_2 fits the fabric");
    let requests: Vec<Tensor<f32>> = (0..test.len())
        .map(|i| test.images.item_tensor(i))
        .collect();
    let runs = engine.infer_batch(&requests).expect("serving batch");
    let mut agree = 0usize;
    let mut float_hits = 0usize;
    let mut hybrid_hits = 0usize;
    for (i, run) in runs.iter().enumerate() {
        let sw = net.predict(&requests[i], BnMode::OnTheFly)[0];
        let hy = tensor::softmax::argmax(&run.logits)[0];
        agree += usize::from(sw == hy);
        float_hits += usize::from(sw == test.labels[i]);
        hybrid_hits += usize::from(hy == test.labels[i]);
        assert!(run.pl_seconds > 0.0 && run.ps_seconds > 0.0);
        assert_eq!(run.backend, "hybrid");
    }
    let n = test.len() as f32;
    assert!(
        agree as f32 / n > 0.9,
        "float↔hybrid agreement {}",
        agree as f32 / n
    );
    assert!(
        float_hits as f32 / n > 0.4,
        "float accuracy {}",
        float_hits as f32 / n
    );
    assert!(
        (hybrid_hits as f32 - float_hits as f32).abs() / n < 0.2,
        "quantized offload must not collapse accuracy"
    );
}

/// Every variant trains a step and improves its loss with both gradient
/// modes — the full architecture zoo is trainable.
#[test]
fn all_variants_train_one_epoch() {
    let cfg = SynthConfig {
        classes: 3,
        per_class: 8,
        hw: 16,
        noise: 0.25,
        jitter: 1,
        seed: 3,
    };
    let data = generate(&cfg);
    for v in Variant::ALL {
        let spec = NetSpec::new(v, 20).with_classes(3);
        let mut net = Network::new(spec, 5);
        let mut tc = TrainConfig::quick(2, 12);
        tc.grad_mode = if matches!(v, Variant::OdeNet | Variant::ROdeNet1) {
            GradMode::Adjoint
        } else {
            GradMode::Unrolled
        };
        let hist = train_epochs(&mut net, &data.images, &data.labels, None, None, tc);
        assert!(
            hist[1].train_loss < hist[0].train_loss * 1.05,
            "{v}: loss {} -> {}",
            hist[0].train_loss,
            hist[1].train_loss
        );
    }
}

/// The PL accelerator is bit-exact against the Q20 software reference on
/// all three offloadable layers (the §3 design contract).
#[test]
fn accelerator_bit_exact_all_layers() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(11);
    for layer in [LayerName::Layer1, LayerName::Layer2_2, LayerName::Layer3_2] {
        let block = ResBlock::new(&mut rng, layer, true);
        let accel = OdeBlockAccel::new(&block, 16, &PYNQ_Z2);
        let (c, hw) = layer.geometry();
        let x = Tensor::<f32>::from_fn(Shape4::new(1, c, hw, hw), |_, _, _, _| {
            rng.random::<f32>() - 0.5
        });
        let xq: Tensor<Q20> = Tensor::from_f32_tensor(&x);
        let run = accel.run_stage(&xq, 3);
        let reference = block.quantize::<Q20>().ode_forward(&xq, 3);
        assert_eq!(run.output.as_slice(), reference.as_slice(), "{layer}");
    }
}

/// Engine timing equals the analytic Table 5 model — execution and model
/// cannot drift apart.
#[test]
fn engine_timing_consistent_with_model() {
    for (v, target) in [
        (Variant::ROdeNet1, OffloadTarget::Layer1),
        (Variant::ROdeNet12, OffloadTarget::Layer1And22),
        (Variant::Hybrid3, OffloadTarget::Layer32),
    ] {
        let net = Network::new(NetSpec::new(v, 20).with_classes(4), 17);
        let x = Tensor::<f32>::zeros(Shape4::new(1, 3, 32, 32));
        let ps = PsModel::Calibrated;
        let pl = PlModel::default();
        let engine = Engine::builder(&net)
            .board(&PYNQ_Z2)
            .offload(Offload::Target(target))
            .ps_model(ps)
            .pl_model(pl)
            .build()
            .expect("paper placements fit");
        let run = engine.infer(&x).expect("runs");
        let row = zynq_sim::timing::table5_row(v, 20, &target, &ps, &pl, &PYNQ_Z2);
        assert!(
            (run.total_seconds() - row.total_w_pl).abs() < 1e-9,
            "{v}: {} vs {}",
            run.total_seconds(),
            row.total_w_pl
        );
    }
}

/// The adjoint and unrolled gradient modes agree more closely at larger
/// N (more solver steps) — the paper's explanation for small-N
/// instability, measured on the real architecture.
#[test]
fn adjoint_gap_shrinks_with_depth() {
    let cfg = SynthConfig {
        classes: 3,
        per_class: 2,
        hw: 16,
        noise: 0.2,
        jitter: 1,
        seed: 19,
    };
    let data = generate(&cfg);
    let cosine = |n: usize| -> f64 {
        let spec = NetSpec::new(Variant::OdeNet, n).with_classes(3);
        let grads = |mode: GradMode| -> Vec<f32> {
            let mut net = Network::new(spec, 23);
            let (logits, cache) = net.forward_train(&data.images, mode);
            let (_, g) = tensor::softmax::cross_entropy(&logits, &data.labels);
            net.zero_grads();
            net.backward(&g, &cache);
            let mut out = Vec::new();
            net.visit_params(&mut |p| out.extend_from_slice(p.g));
            out
        };
        let a = grads(GradMode::Unrolled);
        let b = grads(GradMode::Adjoint);
        let dot: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (*x as f64) * (*y as f64))
            .sum();
        let na: f64 = a.iter().map(|x| (*x as f64).powi(2)).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|x| (*x as f64).powi(2)).sum::<f64>().sqrt();
        dot / (na * nb).max(1e-30)
    };
    let c20 = cosine(20);
    let c44 = cosine(44);
    assert!(c20 > 0.8, "even at N=20 directions correlate: {c20}");
    assert!(
        c44 >= c20 - 0.02,
        "gap must not widen with depth: {c20} -> {c44}"
    );
}

/// CIFAR loader integration: if the real dataset is installed, load a
/// slice and run it through a network (skips silently otherwise).
#[test]
fn real_cifar_if_available() {
    match cifar_data::cifar::load_if_available(64, 32) {
        None => eprintln!("CIFAR-100 binaries not present; skipping"),
        Some((train, test)) => {
            assert_eq!(train.classes, 100);
            let net = Network::new(NetSpec::new(Variant::ROdeNet3, 20), 1);
            let x = test.images.item_tensor(0);
            let logits = net.forward(&x, BnMode::OnTheFly);
            assert_eq!(logits.shape().c, 100);
        }
    }
}
