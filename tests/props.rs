//! Cross-crate property tests: invariants that must hold for *any*
//! block, placement, or format — not just the paper's grid points.

use odenet_suite::prelude::*;
use proptest::prelude::*;
use qfixed::Q20;
use rodenet::ResBlock;
use zynq_sim::datapath::{block_exec_cycles, stage_cycles, OdeBlockAccel};
use zynq_sim::planner::feasible_targets;
use zynq_sim::timing::table5_row;

fn any_layer() -> impl Strategy<Value = LayerName> {
    prop::sample::select(vec![
        LayerName::Layer1,
        LayerName::Layer2_2,
        LayerName::Layer3_2,
    ])
}

fn any_variant() -> impl Strategy<Value = Variant> {
    prop::sample::select(Variant::ALL.to_vec())
}

fn any_depth() -> impl Strategy<Value = usize> {
    prop::sample::select(PAPER_DEPTHS.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulated accelerator is bit-exact with the Q20 software
    /// reference for any seed, layer, and step count.
    #[test]
    fn accel_always_bit_exact(seed in 0u64..1000, layer in any_layer(), steps in 1usize..4) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let block = ResBlock::new(&mut rng, layer, true);
        let accel = OdeBlockAccel::new(&block, 16, &PYNQ_Z2);
        let (c, hw) = layer.geometry();
        // Shrink the spatial extent for speed; the datapath is size-generic.
        let hw = hw.min(8);
        let x = Tensor::<f32>::from_fn(Shape4::new(1, c, hw, hw), |_, _, _, _| {
            rng.random::<f32>() - 0.5
        });
        let xq: Tensor<Q20> = Tensor::from_f32_tensor(&x);
        let run = accel.run_stage(&xq, steps);
        let reference = block.quantize::<Q20>().ode_forward(&xq, steps);
        prop_assert_eq!(run.output.as_slice(), reference.as_slice());
    }

    /// More multiply–add units never cost more cycles; fewer never cost
    /// fewer (monotone cycle model).
    #[test]
    fn cycles_monotone_in_parallelism(layer in any_layer(), n in 1usize..32) {
        let (c, _) = layer.geometry();
        let n = n.min(c - 1);
        let a = block_exec_cycles(layer, n);
        let b = block_exec_cycles(layer, n + 1);
        prop_assert!(b <= a, "conv_x{} {a} vs conv_x{} {b}", n, n + 1);
    }

    /// Stage cycles scale affinely in the execution count (BRAM-resident
    /// feature maps: DMA paid once).
    #[test]
    fn stage_cycles_affine(layer in any_layer(), e in 1usize..20) {
        let one = stage_cycles(layer, 16, 1);
        let many = stage_cycles(layer, 16, e);
        let per = block_exec_cycles(layer, 16);
        prop_assert_eq!(many, one + (e as u64 - 1) * per);
    }

    /// Every feasible placement actually fits; `None` is always feasible.
    #[test]
    fn feasible_targets_fit(parallelism in 1usize..16) {
        let targets = feasible_targets(&PYNQ_Z2, parallelism);
        prop_assert!(targets.contains(&OffloadTarget::None));
        for t in targets {
            prop_assert!(t.fits(&PYNQ_Z2, parallelism));
        }
    }

    /// Table 5 rows are internally consistent for any variant/depth:
    /// ratios in (0, 100], totals positive, offloaded time not larger
    /// than software time, speedup coherent with the two totals.
    #[test]
    fn table5_row_invariants(v in any_variant(), n in any_depth()) {
        let row = table5_row(
            v, n,
            &OffloadTarget::paper_default(v),
            &PsModel::Calibrated,
            &PlModel::default(),
            &PYNQ_Z2,
        );
        prop_assert!(row.total_wo_pl > 0.0);
        prop_assert!(row.total_w_pl > 0.0);
        prop_assert!(row.total_w_pl <= row.total_wo_pl + 1e-12);
        for (wo, w) in row.targets_wo_pl.iter().zip(&row.targets_w_pl) {
            prop_assert!(w < wo, "PL must beat PS on the offloaded stage");
        }
        for r in &row.ratio_pct {
            prop_assert!(*r > 0.0 && *r <= 100.0);
        }
        let expect = row.total_wo_pl / row.total_w_pl;
        prop_assert!((row.speedup - expect).abs() < 1e-9);
    }

    /// Quantizing a block to a wider fixed-point format never increases
    /// the output divergence from float (on the same input).
    #[test]
    fn wider_formats_diverge_less(seed in 0u64..200) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use qfixed::Fix;
        let mut rng = StdRng::seed_from_u64(seed);
        let block = ResBlock::new(&mut rng, LayerName::Layer1, true);
        let x = Tensor::<f32>::from_fn(Shape4::new(1, 16, 8, 8), |_, _, _, _| {
            rng.random::<f32>() - 0.5
        });
        let yf = block.f_eval(&x, 0.5, BnMode::OnTheFly);
        let d20 = {
            let q: Tensor<Fix<20>> = Tensor::from_f32_tensor(&x);
            let y = block.quantize::<Fix<20>>().f_eval(&q, Fix::<20>::from_f32(0.5));
            yf.max_abs_diff(&y.to_f32())
        };
        let d12 = {
            let q: Tensor<Fix<12>> = Tensor::from_f32_tensor(&x);
            let y = block.quantize::<Fix<12>>().f_eval(&q, Fix::<12>::from_f32(0.5));
            yf.max_abs_diff(&y.to_f32())
        };
        // Q20 has 256× finer resolution than Q12: allow generous slack
        // but insist on the ordering.
        prop_assert!(d20 <= d12 * 1.5 + 1e-6, "Q20 {d20} vs Q12 {d12}");
        prop_assert!(d20 < 0.05, "Q20 divergence bounded: {d20}");
    }

    /// The network forward pass is deterministic and batch-consistent:
    /// running two images in one batch equals running them separately
    /// (inference has no cross-batch coupling in OnTheFly mode).
    #[test]
    fn batch_consistency(seed in 0u64..100) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Network::new(NetSpec::new(Variant::ROdeNet3, 20).with_classes(4), seed);
        let batch = Tensor::<f32>::from_fn(Shape4::new(2, 3, 16, 16), |_, _, _, _| {
            rng.random::<f32>() - 0.5
        });
        let joint = net.forward(&batch, BnMode::OnTheFly);
        for i in 0..2 {
            let solo = net.forward(&batch.item_tensor(i), BnMode::OnTheFly);
            for (a, b) in joint.item(i).iter().zip(solo.item(0)) {
                prop_assert!((a - b).abs() < 1e-5, "batch item {i}: {a} vs {b}");
            }
        }
    }

    /// SynthCIFAR class parameters are stable under the seed and distinct
    /// across classes.
    #[test]
    fn synth_classes_distinct(seed in 0u64..500) {
        use cifar_data::synth::class_params;
        let a = class_params(0, seed);
        let b = class_params(1, seed);
        let dist = (a.theta - b.theta).abs()
            + (a.freq - b.freq).abs()
            + (a.blob.0 - b.blob.0).abs();
        prop_assert!(dist > 1e-3, "classes 0/1 collapse under seed {seed}");
    }
}
