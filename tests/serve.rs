//! Acceptance suite for the online serving subsystem (ISSUE 6).
//!
//! The headline scenario: the 2×Arty Z7-20 Q20 cluster from
//! `tests/cluster.rs` serving an open-loop Poisson stream through
//! continuous micro-batching. Pinned: near-unloaded p50 latency at
//! light load, deadline dispatch beating fixed-batch-32 on p99 at half
//! the ceiling, goodput saturating at the pipelined ceiling under
//! overload — plus an exact bit-stable [`ServeReport`] (virtual time,
//! seeded arrivals) and the generic proptest invariants.
//!
//! A note on the 0.9×-ceiling goodput check: over a *finite* stream,
//! `goodput = images / horizon` prices the ramp-out tail (the horizon
//! runs to the last completion, past the last arrival), so open-loop
//! goodput at 0.9× offered load sits a few percent below offered even
//! for a server that never falls behind. The pinned claims are
//! therefore relative: deadline dispatch keeps ≥ 0.95× of the goodput
//! of the classical fixed-batch-32 dispatcher at the same offered
//! load, and under overload (1.2×) goodput reaches ≥ 0.95× of the
//! closed-loop pipelined batch-32 throughput — the ceiling the batch
//! benchmarks report.

use odenet_suite::prelude::*;
use proptest::prelude::*;
use zynq_sim::cluster::{bottleneck_seconds, StageTiming};
use zynq_sim::serve::{serve_timeline, ArrivalProcess, Dispatch};
use zynq_sim::{Replication, ARTY_Z7_20};

fn two_arty() -> Cluster {
    Cluster::homogeneous(&ARTY_Z7_20, 2, Interconnect::GIGABIT_ETHERNET)
}

/// The serving rack's plan: ODENet-20 sharded across two Arty Z7-20
/// at Q20 (board 0: layer1 + layer2_2, board 1: layer3_2).
fn rack_plan() -> ClusterPlan {
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
    plan_cluster(
        &spec,
        &ClusterRequest {
            cluster: two_arty(),
            offload: Offload::Auto,
            bn: BnMode::OnTheFly,
            ps: PsModel::Calibrated,
            pl: PlModel::default(),
            precision: PlFormat::Q20.into(),
            schedule: Schedule::Pipelined,
            partitioner: Partitioner::FirstFit,
            replication: Replication::None,
        },
    )
    .expect("two XC7Z020s carry ODENet-20 at Q20")
}

fn poisson_at(plan: &ClusterPlan, fraction: f64, dispatch: Dispatch) -> ServeRequest {
    ServeRequest {
        arrivals: ArrivalProcess::Poisson {
            rate: fraction / plan.bottleneck_seconds(),
        },
        images: 256,
        dispatch,
        seed: 42,
        window: Window::default(),
    }
}

/// At 0.2× of the ceiling the server is nearly unloaded: median total
/// latency (queueing + batching + service) stays within 1.1× of the
/// single-image latency the plan predicts — served end-to-end through
/// `Engine::serve`.
#[test]
fn light_load_p50_stays_near_unloaded_latency() {
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
    let net = Network::new(spec, 42);
    let engine = Engine::builder(&net)
        .cluster(two_arty())
        .schedule(Schedule::Pipelined)
        .build()
        .expect("builds");
    let plan = engine.cluster_plan().expect("cluster engines keep a plan");
    let single = plan.total_seconds();
    let report = engine
        .serve(&poisson_at(plan, 0.2, Dispatch::default()))
        .expect("valid request");
    assert_eq!(report.images, 256);
    assert!(
        report.latency_p50 <= 1.1 * single,
        "p50 {} vs 1.1 × unloaded {}",
        report.latency_p50,
        1.1 * single
    );
    // No latency can beat the unloaded pipeline.
    assert!(report.latency_p50 >= single - 1e-12);
    assert!(report.latency_p99 >= report.latency_p50);
}

/// At 0.5× of the ceiling, continuous micro-batching beats the
/// classical fixed-batch-32 dispatcher on p99 total latency — under
/// light-to-moderate load a fixed batch makes its first image wait
/// for its last.
#[test]
fn deadline_dispatch_beats_fixed_batch_32_on_p99_at_half_ceiling() {
    let plan = rack_plan();
    let deadline = serve_timeline(
        plan.timeline(),
        &poisson_at(&plan, 0.5, Dispatch::default()),
    )
    .expect("valid");
    let fixed = serve_timeline(
        plan.timeline(),
        &poisson_at(&plan, 0.5, Dispatch::FixedBatch { size: 32 }),
    )
    .expect("valid");
    assert!(
        deadline.latency_p99 < fixed.latency_p99,
        "deadline p99 {} must beat fixed-32 p99 {}",
        deadline.latency_p99,
        fixed.latency_p99
    );
    // The gap is structural, not marginal: fixed-32 pays the whole
    // batch-accumulation window (~32 / offered ≈ 8.7s) in its tail.
    assert!(deadline.latency_p99 < 0.25 * fixed.latency_p99);
}

/// The 0.9×-ceiling goodput claim (see the module docs for why the
/// comparison is relative over a finite stream): deadline dispatch
/// keeps ≥ 0.95× the goodput of fixed-batch-32 at the same offered
/// load while cutting its p99, and it never falls behind the stream —
/// goodput stays within 10% of offered (the shortfall is exactly the
/// ramp-out tail).
#[test]
fn near_saturation_goodput_holds_against_fixed_batch_32() {
    let plan = rack_plan();
    let deadline = serve_timeline(
        plan.timeline(),
        &poisson_at(&plan, 0.9, Dispatch::default()),
    )
    .expect("valid");
    let fixed = serve_timeline(
        plan.timeline(),
        &poisson_at(&plan, 0.9, Dispatch::FixedBatch { size: 32 }),
    )
    .expect("valid");
    assert!(
        deadline.goodput >= 0.95 * fixed.goodput,
        "deadline goodput {} vs fixed-32 {}",
        deadline.goodput,
        fixed.goodput
    );
    assert!(deadline.latency_p99 < fixed.latency_p99);
    assert!(
        deadline.goodput >= 0.9 * deadline.offered_rate,
        "goodput {} vs offered {}",
        deadline.goodput,
        deadline.offered_rate
    );
}

/// Under overload (1.2× the ceiling) the queue diverges but goodput
/// saturates at the placement's capacity: ≥ 0.95× the closed-loop
/// pipelined batch-32 throughput, and never above the ceiling.
#[test]
fn overload_goodput_saturates_at_the_pipelined_ceiling() {
    let plan = rack_plan();
    let report = serve_timeline(
        plan.timeline(),
        &poisson_at(&plan, 1.2, Dispatch::default()),
    )
    .expect("valid");
    let batch32 = 32.0 / plan.batch_seconds(32, Schedule::Pipelined);
    let ceiling = 1.0 / plan.bottleneck_seconds();
    assert!(
        report.goodput >= 0.95 * batch32,
        "overload goodput {} vs batch-32 throughput {}",
        report.goodput,
        batch32
    );
    assert!(report.goodput <= ceiling * (1.0 + 1e-9));
    // Overload is visible where it should be: the tail, not the rate.
    let light = serve_timeline(
        plan.timeline(),
        &poisson_at(&plan, 0.2, Dispatch::default()),
    )
    .expect("valid");
    assert!(report.latency_p99 > 3.0 * light.latency_p99);
}

/// Serving changes *when*, never *what*: the exact pinned
/// [`ServeReport`] for one seeded Poisson run — virtual time and
/// seeded arrivals make it bit-stable across runs and machines.
#[test]
#[allow(clippy::excessive_precision)] // full-precision pins on purpose
fn pinned_poisson_serve_report_is_bit_stable() {
    let plan = rack_plan();
    let req = ServeRequest {
        arrivals: ArrivalProcess::Poisson { rate: 4.0 },
        images: 64,
        dispatch: Dispatch::default(),
        seed: 7,
        window: Window::default(),
    };
    let report = serve_timeline(plan.timeline(), &req).expect("valid");
    let again = serve_timeline(plan.timeline(), &req).expect("valid");
    assert_eq!(report, again, "bit-stable");

    // The exact run, pinned: integers to the image, floats to the ulp
    // (1e-12 relative slack only for cross-platform libm leeway in the
    // exponential gap generator).
    assert_eq!(report.images, 64);
    assert_eq!(report.batches, 51);
    assert_eq!(report.queue_peak, 3);
    assert_eq!(report.offered_rate, 4.0);
    let pin = |got: f64, want: f64, what: &str| {
        assert!(
            (got - want).abs() <= 1e-12 * want.abs(),
            "{what}: got {got:.17e}, pinned {want:.17e}"
        );
    };
    pin(report.goodput, 4.443_412_550_300_669_39, "goodput");
    pin(report.horizon, 14.403_344_113_449_325_2, "horizon");
    pin(report.latency_p50, 0.397_639_845_343_336_518, "p50");
    pin(report.latency_p99, 0.745_365_622_738_018_097, "p99");
    // 64 samples cannot separate p99 from p99.9: both hit index 62.
    assert_eq!(report.latency_p999, report.latency_p99);
    pin(report.latency_max, 0.941_060_231_209_246_645, "max");
    assert_eq!(report.utilization.len(), 3, "head PS + two PL fabrics");
    pin(report.utilization[0].1, 0.605_173_990_297_853_8, "PS util");
    pin(report.utilization[1].1, 0.458_159_201_642_489_9, "PL0 util");
    pin(
        report.utilization[2].1,
        0.147_091_885_281_121_16,
        "PL1 util",
    );
}

fn any_timeline() -> impl Strategy<Value = Vec<StageTiming>> {
    use zynq_sim::cluster::StageResource;
    prop::collection::vec((0usize..4, 0.001f64..0.5, 0.0f64..0.01), 1..8).prop_map(|stages| {
        stages
            .into_iter()
            .map(|(r, seconds, transfer_in)| StageTiming {
                resource: if r == 0 {
                    StageResource::Ps
                } else {
                    StageResource::Pl(r - 1)
                },
                layer: None,
                seconds,
                transfer_in,
                replicas: Vec::new(),
            })
            .collect()
    })
}

fn any_trace() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..0.4, 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any seeded arrival trace over any pipeline, admitting every
    /// image on arrival (the deadline policy's lower envelope) never
    /// loses to fixed-batch-32 dispatch on p99 total latency: fixed
    /// batching only ever *delays* releases, and a later release can
    /// never finish an image sooner.
    #[test]
    fn deadline_p99_never_loses_to_fixed_batch_32(
        timeline in any_timeline(),
        trace in any_trace(),
    ) {
        // Traces must span positive time to be valid (the shim has no
        // prop_assume; an early Ok skips the degenerate case).
        if trace.iter().sum::<f64>() <= 0.0 {
            return Ok(());
        }
        let request = |dispatch: Dispatch| ServeRequest {
            arrivals: ArrivalProcess::Trace(trace.clone()),
            images: 48,
            dispatch,
            seed: 1,
            window: Window::default(),
        };
        let deadline =
            serve_timeline(&timeline, &request(Dispatch::Deadline { deadline: 0.0 }))
                .expect("valid");
        let fixed =
            serve_timeline(&timeline, &request(Dispatch::FixedBatch { size: 32 }))
                .expect("valid");
        prop_assert!(
            deadline.latency_p99 <= fixed.latency_p99 + 1e-9,
            "deadline p99 {} vs fixed-32 p99 {}",
            deadline.latency_p99,
            fixed.latency_p99
        );
    }

    /// Goodput can never exceed the placement's pipelined throughput
    /// ceiling: the bottleneck resource serializes `images ×
    /// bottleneck` seconds of work, whatever the dispatch policy or
    /// arrival pattern.
    #[test]
    fn goodput_never_exceeds_the_pipelined_ceiling(
        timeline in any_timeline(),
        trace in any_trace(),
        policy in 0usize..3,
        images in 1usize..40,
    ) {
        if trace.iter().sum::<f64>() <= 0.0 {
            return Ok(());
        }
        let dispatch = match policy {
            0 => Dispatch::Deadline { deadline: 0.0 },
            1 => Dispatch::Deadline { deadline: f64::INFINITY },
            _ => Dispatch::FixedBatch { size: 8 },
        };
        let report = serve_timeline(
            &timeline,
            &ServeRequest {
                arrivals: ArrivalProcess::Trace(trace),
                images,
                dispatch,
                seed: 3,
                window: Window::default(),
            },
        )
        .expect("valid");
        let ceiling = 1.0 / bottleneck_seconds(&timeline);
        prop_assert!(
            report.goodput <= ceiling * (1.0 + 1e-9),
            "goodput {} vs ceiling {}",
            report.goodput,
            ceiling
        );
        // Total latency is bounded below by unloaded service time.
        let unloaded = zynq_sim::cluster::per_image_seconds(&timeline);
        prop_assert!(report.latency_p50 >= unloaded - 1e-9);
    }
}

/// `Engine::serve` works on a single-board engine too (the plan's
/// placement rebuilt as the one-board degenerate pipeline), and a
/// custom backend — which owns its execution strategy and carries no
/// plan — is a typed error, not a panic.
#[test]
fn single_board_engines_serve_and_custom_backends_cannot() {
    let spec = NetSpec::new(Variant::ROdeNet3, 20).with_classes(10);
    let net = Network::new(spec, 77);
    let engine = Engine::builder(&net).build().expect("default builds");
    let plan = engine.plan().expect("single-board engines keep a plan");
    let single = plan.table5().total_w_pl;
    let mut req = ServeRequest::poisson(0.2 / single);
    req.images = 32;
    let report = engine.serve(&req).expect("single board serves");
    assert_eq!(report.images, 32);
    // The rebuilt one-board pipeline reproduces the plan's latency.
    assert!(
        (report.latency_p50 - single).abs() / single < 0.25,
        "served p50 {} vs plan latency {}",
        report.latency_p50,
        single
    );

    struct Null;
    impl Backend for Null {
        fn name(&self) -> &'static str {
            "null"
        }
        fn offloaded(&self) -> &[LayerName] {
            &[]
        }
        fn infer(&self, _x: &Tensor<f32>) -> Result<RunReport, EngineError> {
            Err(EngineError::EmptyBatch)
        }
    }
    let custom = Engine::builder(&net)
        .custom_backend(Box::new(Null))
        .build()
        .expect("custom builds");
    assert_eq!(
        custom.serve(&ServeRequest::poisson(1.0)),
        Err(EngineError::ServeRequiresPlan { backend: "null" })
    );

    // Degenerate requests are typed errors through the engine too.
    let engine_err = engine
        .serve(&ServeRequest::poisson(0.0))
        .expect_err("zero rate");
    assert!(matches!(engine_err, EngineError::InvalidServe { .. }));
}
