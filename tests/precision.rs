//! Acceptance suite for the per-stage precision policy (ISSUE 5).
//!
//! The headline scenarios:
//!
//! * a **mixed-width deployment** — layer1 at the paper's Q20 next to
//!   layer3_2 at Q16 on one PYNQ-Z2, and layer1 at Q16 next to
//!   layer3_2 at Q20 across a heterogeneous rack — plans, validates,
//!   and infers end to end on fabrics where uniform Q20 is infeasible
//!   for the same target, with per-stage BRAM/DSP/DMA reported in the
//!   plan;
//! * `Precision::Calibrated` on a **trained** synthcifar network picks
//!   per-stage `frac` from measured activation ranges, lands within
//!   1 percentage point of uniform Q20 test accuracy, and strictly
//!   reduces total DMA words;
//! * `Precision::Uniform(Q20)` stays **bit-identical** to the
//!   deprecated `pl_format(Q20)` path across the placement × variant ×
//!   BN matrix;
//! * calibrated formats never saturate on the calibration set
//!   (proptest: the measured envelope round-trips within ≤ 1 ULP).

use odenet_suite::prelude::*;
use proptest::prelude::*;
use qfixed::QFormat;
use zynq_sim::{Replication, ARTY_Z7_10, ARTY_Z7_20};

fn image(seed: u64, hw: usize) -> Tensor<f32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_fn(Shape4::new(1, 3, hw, hw), |_, _, _, _| {
        rng.random::<f32>() - 0.5
    })
}

const Q16_10: PlFormat = PlFormat::Q16 { frac: 10 };

/// Single-board acceptance: layer1 + layer3_2 together are impossible
/// on a PYNQ-Z2 at uniform Q20 (64 + 140 BRAM36 > 140), but putting
/// layer3_2 at Q16 (70 BRAM36) makes the pair fit — and the whole
/// plan/validate/infer pipeline prices each stage at its own width.
#[test]
fn mixed_width_deploys_where_uniform_q20_is_infeasible() {
    let net = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(10), 404);
    let target = Offload::Target(OffloadTarget::Layer1And32);

    // Uniform Q20 cannot place it…
    let err = Engine::builder(&net)
        .offload(target)
        .build()
        .expect_err("64 + 140 BRAM36 exceed the XC7Z020");
    assert!(matches!(err, EngineError::InfeasiblePlacement { .. }));

    // …the mixed table can.
    let mixed = StageFormats::uniform(PlFormat::Q20).with(LayerName::Layer3_2, Q16_10);
    let engine = Engine::builder(&net)
        .offload(target)
        .precision(Precision::PerStage(mixed))
        .build()
        .expect("layer1@Q20 + layer3_2@Q16 fit one XC7Z020");
    assert_eq!(engine.target(), OffloadTarget::Layer1And32);
    assert_eq!(
        engine.precision().format_of(LayerName::Layer1),
        PlFormat::Q20
    );
    assert_eq!(engine.precision().format_of(LayerName::Layer3_2), Q16_10);

    // The plan reports per-stage format, BRAM, DSP, and DMA.
    let plan = engine.plan().expect("built-in backend keeps its plan");
    assert_eq!(plan.precision().uniform_format(), None);
    let stages = plan.stages();
    assert_eq!(stages.len(), 2);
    let l1 = &stages[0];
    let l32 = &stages[1];
    assert_eq!((l1.layer, l1.format), (LayerName::Layer1, PlFormat::Q20));
    assert_eq!((l32.layer, l32.format), (LayerName::Layer3_2, Q16_10));
    assert_eq!(l1.bram36, 64.0, "layer1 priced at 32-bit");
    assert_eq!(l32.bram36, 70.0, "layer3_2 priced at 16-bit");
    assert!(plan.bram36_used() <= PYNQ_Z2.bram36 as f64);
    assert_eq!(l1.dma_words, 2 * 16 * 1024, "full-width DMA");
    assert_eq!(l32.dma_words, 64 * 64, "half-width DMA");
    // The 16-bit MAC needs 1 DSP tile, the 32-bit one 4.
    assert!(l32.dsp < l1.dsp, "{} < {}", l32.dsp, l1.dsp);

    // End to end: the engine executes each stage in its own format and
    // the cached plan timing matches the executed run exactly.
    let x = image(1, 32);
    let run = engine.infer(&x).expect("mixed inference runs");
    assert_eq!(run.offloaded, vec![LayerName::Layer1, LayerName::Layer3_2]);
    assert!(run.logits.as_slice().iter().all(|v| v.is_finite()));
    assert_eq!(run.dma_words, l1.dma_words + l32.dma_words);
    assert!(
        (plan.total_seconds() - run.total_seconds()).abs() < 1e-12,
        "plan {} vs run {}",
        plan.total_seconds(),
        run.total_seconds()
    );
}

/// The ISSUE's rack scenario verbatim: layer1 at Q16 on the half-size
/// XC7Z010 next to layer3_2 at Q20 on the XC7Z020 — a sharding no
/// uniform-Q20 request can realize on this rack (layer1 at Q20 is
/// 64 BRAM36 > the XC7Z010's 60, and nothing shares a fabric with a
/// Q20 layer3_2). Logits stay bit-identical to an unsharded reference
/// with the same per-stage formats.
#[test]
fn rack_places_layer1_at_q16_next_to_layer32_at_q20() {
    let net = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(10), 405);
    let rack = || Cluster::new(vec![ARTY_Z7_10, ARTY_Z7_20], Interconnect::GIGABIT_ETHERNET);
    let target = Offload::Target(OffloadTarget::Layer1And32);

    // Uniform Q20 cannot shard the pair over this rack at all.
    let err = Engine::builder(&net)
        .cluster(rack())
        .offload(target)
        .build()
        .expect_err("no uniform-Q20 assignment exists");
    assert!(
        matches!(err, EngineError::ShardInfeasible { .. }),
        "{err:?}"
    );

    // Per-stage widths make it work: layer1 shrinks onto the XC7Z010.
    let mixed = StageFormats::uniform(PlFormat::Q20).with(LayerName::Layer1, Q16_10);
    let engine = Engine::builder(&net)
        .cluster(rack())
        .offload(target)
        .precision(Precision::PerStage(mixed))
        .build()
        .expect("layer1@Q16 fits the XC7Z010, layer3_2@Q20 the XC7Z020");
    let plan = engine.cluster_plan().expect("cluster engines keep a plan");
    assert_eq!(plan.board_of(LayerName::Layer1), Some(0), "small fabric");
    assert_eq!(plan.board_of(LayerName::Layer3_2), Some(1), "big fabric");
    // Per-board shards carry per-stage formats and resources.
    for shard in plan.shards() {
        for stage in &shard.stages {
            match stage.layer {
                LayerName::Layer1 => {
                    assert_eq!(stage.format, Q16_10);
                    assert_eq!(stage.bram36, 40.0);
                }
                LayerName::Layer3_2 => {
                    assert_eq!(stage.format, PlFormat::Q20);
                    assert_eq!(stage.bram36, 140.0);
                }
                other => panic!("unexpected sharded stage {other}"),
            }
        }
    }

    // Bit-identity against an unsharded mixed-width reference on a
    // fictitious double-BRAM fabric: sharding moves stages between
    // boards, the per-stage formats decide the numerics.
    let mut big = ARTY_Z7_20;
    big.bram36 *= 2;
    let reference = Engine::builder(&net)
        .board(&big)
        .offload(target)
        .precision(Precision::PerStage(mixed))
        .build()
        .expect("the doubled fabric fits both circuits");
    for seed in 0..2u64 {
        let x = image(seed, 32);
        let a = engine.infer(&x).expect("rack runs");
        let b = reference.infer(&x).expect("reference runs");
        assert_eq!(a.logits.as_slice(), b.logits.as_slice(), "seed {seed}");
        assert_eq!(a.dma_words, b.dma_words);
        assert!((a.total_seconds() - b.total_seconds() - plan.transfer_seconds()).abs() < 1e-12);
    }
}

/// The partitioner prices each stage at its own width: on the same
/// heterogeneous rack, the balanced search must produce a feasible
/// mixed assignment through `ClusterRequest.precision` too (the
/// plan-level path the engine shares).
#[test]
fn balanced_partitioner_handles_mixed_widths() {
    let spec = NetSpec::new(Variant::OdeNet, 20);
    let mixed = StageFormats::uniform(PlFormat::Q20).with(LayerName::Layer1, Q16_10);
    let req = ClusterRequest {
        cluster: Cluster::new(vec![ARTY_Z7_10, ARTY_Z7_20], Interconnect::GIGABIT_ETHERNET),
        offload: Offload::Target(OffloadTarget::Layer1And32),
        bn: BnMode::OnTheFly,
        ps: PsModel::Calibrated,
        pl: PlModel::default(),
        precision: mixed,
        schedule: Schedule::Pipelined,
        partitioner: Partitioner::BalancedMakespan,
        replication: Replication::None,
    };
    let plan = plan_cluster(&spec, &req).expect("the mixed assignment exists");
    assert_eq!(plan.board_of(LayerName::Layer3_2), Some(1), "only fit");
    assert_eq!(plan.precision().format_of(LayerName::Layer1), Q16_10);
    // The infeasibility diagnostics price the stuck layer at ITS width:
    // layer3_2 forced at Q20 onto a rack of two XC7Z010s reports its
    // full 140-BRAM36 demand.
    let err = plan_cluster(
        &spec,
        &ClusterRequest {
            cluster: Cluster::homogeneous(&ARTY_Z7_10, 2, Interconnect::GIGABIT_ETHERNET),
            ..req
        },
    )
    .expect_err("no XC7Z010 holds a Q20 layer3_2");
    match err {
        EngineError::ShardInfeasible {
            stuck,
            stuck_bram36,
            ..
        } => {
            assert_eq!(stuck, Some(LayerName::Layer3_2));
            assert_eq!(stuck_bram36, 140.0, "priced at the stage's own Q20");
        }
        other => panic!("expected ShardInfeasible, got {other:?}"),
    }
}

/// Satellite: `Precision::Uniform(Q20)` must stay bit-identical to the
/// PR 4 `pl_format(Q20)` path across the placement × variant × BN
/// matrix — same Ok/Err outcomes, same logits, same modelled timing.
#[test]
#[allow(deprecated)]
fn uniform_q20_matches_deprecated_pl_format_across_matrix() {
    for (vi, variant) in [Variant::ROdeNet3, Variant::OdeNet, Variant::ResNet]
        .into_iter()
        .enumerate()
    {
        let spec = NetSpec::new(variant, 20).with_classes(10);
        let net = Network::new(spec, 5000 + vi as u64);
        for target in OffloadTarget::ALL {
            for bn in [BnMode::OnTheFly, BnMode::Running] {
                let legacy = Engine::builder(&net)
                    .offload(Offload::Target(target))
                    .bn_mode(bn)
                    .pl_format(PlFormat::Q20)
                    .build();
                let policy = Engine::builder(&net)
                    .offload(Offload::Target(target))
                    .bn_mode(bn)
                    .precision(Precision::Uniform(PlFormat::Q20))
                    .build();
                match (legacy, policy) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(
                            b.precision().uniform_format(),
                            Some(PlFormat::Q20),
                            "resolved table is uniform Q20"
                        );
                        let x = image(90 + vi as u64, 32);
                        let ra = a.infer(&x).expect("legacy runs");
                        let rb = b.infer(&x).expect("policy runs");
                        assert_eq!(
                            ra.logits.as_slice(),
                            rb.logits.as_slice(),
                            "{variant}/{target:?}/{bn:?}: bit-identical"
                        );
                        assert_eq!(ra.ps_seconds, rb.ps_seconds);
                        assert_eq!(ra.pl_seconds, rb.pl_seconds);
                        assert_eq!(ra.dma_words, rb.dma_words);
                    }
                    (Err(ea), Err(eb)) => {
                        assert_eq!(ea, eb, "{variant}/{target:?}/{bn:?}: same rejection");
                    }
                    (a, b) => panic!(
                        "{variant}/{target:?}/{bn:?}: legacy {:?} vs policy {:?} disagree",
                        a.is_ok(),
                        b.is_ok()
                    ),
                }
            }
        }
    }
}

/// Satellite: an empty calibration sample is a typed error from the
/// builder (both `plan()` and `build()`), and the per-stage
/// `UnsupportedFormat` Display names the offending stage.
#[test]
fn calibration_and_format_errors_are_typed_and_named() {
    let net = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(10), 7);
    let empty = || Precision::Calibrated {
        total_bits: 16,
        headroom_bits: 1,
        sample: Vec::new(),
    };
    assert_eq!(
        Engine::builder(&net)
            .precision(empty())
            .plan()
            .expect_err("no sample"),
        EngineError::CalibrationEmpty
    );
    let err = Engine::builder(&net)
        .precision(empty())
        .build()
        .expect_err("no sample");
    assert_eq!(err, EngineError::CalibrationEmpty);
    let _ = err.to_string();

    // A degenerate per-stage override names its stage in the Display.
    let broken =
        StageFormats::uniform(PlFormat::Q20).with(LayerName::Layer2_2, PlFormat::Q16 { frac: 16 });
    let err = Engine::builder(&net)
        .precision(Precision::PerStage(broken))
        .plan()
        .expect_err("degenerate override");
    match &err {
        EngineError::UnsupportedFormat { stage, .. } => {
            assert_eq!(*stage, Some(LayerName::Layer2_2));
        }
        other => panic!("expected UnsupportedFormat, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("layer2_2"), "stage named in Display: {msg}");

    // A per-stage override without a datapath names its stage at build
    // (the others execute fine).
    let analysis_only = StageFormats::uniform(PlFormat::Q20)
        .with(LayerName::Layer1, PlFormat::Custom(QFormat::new(8, 4)));
    let b = Engine::builder(&net)
        .offload(Offload::Target(OffloadTarget::Layer1And22))
        .precision(Precision::PerStage(analysis_only));
    assert!(b.plan().is_ok(), "analysis-only widths still plan");
    match b.build() {
        Err(EngineError::UnsupportedFormat {
            total_bits: 8,
            stage: Some(LayerName::Layer1),
            ..
        }) => {}
        other => panic!("expected stage-naming build error, got {other:?}"),
    }

    // The whole-network fixed-point backend cannot honor a mixed table.
    let mixed = StageFormats::uniform(PlFormat::Q20).with(LayerName::Layer1, Q16_10);
    let err = Engine::builder(&net)
        .backend(BackendKind::PlBitExact)
        .precision(Precision::PerStage(mixed))
        .build()
        .expect_err("one number system per PlBitExact network");
    assert_eq!(
        err,
        EngineError::MixedPrecisionUnsupported {
            backend: "pl-bit-exact"
        }
    );
}

/// Acceptance: a zero-training calibration pass on a **trained**
/// synthcifar network picks per-stage `frac` from measured activation
/// ranges; the calibrated 16-bit deployment stays within 1 percentage
/// point of uniform Q20 test accuracy while strictly reducing total
/// DMA words (half-width feature maps on every offloaded stage).
#[test]
fn calibrated_16bit_tracks_q20_accuracy_with_fewer_dma_words() {
    // The paper's recommended variant at the paper's 32×32 extent; PS
    // stages run `BnMode::Running` (the deployment-parity mode that
    // sidesteps the §4.3 on-the-fly hazard), the offloaded layer3_2
    // circuit computes its statistics per feature map as the PL always
    // does — identical semantics for both engines under comparison.
    let cfg = SynthConfig {
        classes: 3,
        per_class: 16,
        hw: 32,
        noise: 0.1,
        jitter: 1,
        seed: 61,
    };
    let (train, test) = generate_split(&cfg, 8);
    let spec = NetSpec::new(Variant::ROdeNet3, 20).with_classes(3);
    let mut net = Network::new(spec, 61);
    let mut tc = TrainConfig::quick(4, 12);
    tc.seed = 61;
    let _ = train_epochs(&mut net, &train.images, &train.labels, None, None, tc);

    // The calibration sample: a handful of training inputs, no labels.
    let sample: Vec<Tensor<f32>> = (0..6).map(|i| train.images.item_tensor(i)).collect();
    let q20 = Engine::builder(&net)
        .bn_mode(BnMode::Running)
        .build()
        .expect("uniform Q20 builds");
    let calibrated = Engine::builder(&net)
        .bn_mode(BnMode::Running)
        .precision(Precision::Calibrated {
            total_bits: 16,
            headroom_bits: 1,
            sample,
        })
        .build()
        .expect("calibrated 16-bit builds");
    assert_eq!(q20.target(), OffloadTarget::Layer32);
    assert_eq!(calibrated.target(), OffloadTarget::Layer32);

    // The chosen formats are measured, 16-bit, and executable — picked
    // per stage from the activation envelope, not configured by hand.
    let table = calibrated.precision();
    for layer in [LayerName::Layer1, LayerName::Layer3_2] {
        let q = table.format_of(layer).qformat().expect("valid");
        assert_eq!(q.total_bits, 16, "{layer}");
        assert!([6u32, 8, 10, 12].contains(&q.frac_bits), "{layer}: {q}");
    }

    // Evaluation runs one batched inference per engine (the repo's
    // `evaluate` convention) over the held-out set.
    let batch = {
        let one = test.images.item_tensor(0);
        let s = one.shape();
        Tensor::from_fn(Shape4::new(test.len(), s.c, s.h, s.w), |n, c, h, w| {
            test.images.item_tensor(n).get(0, c, h, w)
        })
    };
    let accuracy = |engine: &Engine| -> (f64, u64) {
        let run = engine.infer(&batch).expect("serves");
        let preds = tensor::softmax::argmax(&run.logits);
        let correct = preds
            .iter()
            .zip(&test.labels)
            .filter(|(p, l)| p == l)
            .count();
        (correct as f64 / test.len() as f64, run.dma_words)
    };
    let (acc20, dma20) = accuracy(&q20);
    let (acc16, dma16) = accuracy(&calibrated);
    // Half-width feature maps strictly reduce the per-image bus words.
    assert!(
        dma16 < dma20,
        "calibrated DMA {dma16} must be strictly below Q20's {dma20}"
    );
    assert!(
        (acc20 - acc16).abs() <= 0.01 + 1e-9,
        "calibrated accuracy {acc16:.3} within 1pp of Q20's {acc20:.3}"
    );
    // Sanity: the trained model actually learned the task — the pin
    // above is meaningless between two coin-flippers.
    assert!(acc20 > 0.9, "trained accuracy {acc20:.3}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite: calibrated per-stage formats never saturate on the
    /// calibration set — the measured envelope (the largest activation
    /// the sample produced) round-trips through the chosen `QFormat`
    /// within ≤ 1 ULP, on both sides of zero.
    #[test]
    fn calibrated_formats_never_saturate_on_the_sample(
        seed in 0u64..1000,
        images in 1usize..3,
        headroom in 0u32..3,
        wide in 0usize..2,
    ) {
        let total_bits = if wide == 1 { 32 } else { 16 };
        let net = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(5), seed);
        let sample: Vec<Tensor<f32>> = (0..images as u64).map(|i| image(seed * 31 + i, 16)).collect();
        let policy = Precision::Calibrated {
            total_bits,
            headroom_bits: headroom,
            sample: sample.clone(),
        };
        // A fresh random net can have badly-scaled activations; a
        // resolution failure must be the typed range error, never a
        // silently saturating format.
        let table = match policy.resolve(&net, BnMode::OnTheFly) {
            Ok(t) => t,
            Err(EngineError::CalibrationRange { .. }) => return Ok(()),
            Err(other) => return Err(TestCaseError::fail(format!("unexpected: {other}"))),
        };
        let ranges = rodenet::stage_ranges(&net, &sample, BnMode::OnTheFly);
        for r in &ranges {
            let q = table.format_of(r.layer).qformat().expect("chosen formats are valid");
            let ulp = q.resolution();
            for v in [r.max_abs() as f64, -(r.max_abs() as f64)] {
                let err = (q.quantize(v) - v).abs();
                prop_assert!(
                    err <= ulp + 1e-15,
                    "{}: envelope {v} round-trips with error {err} > 1 ULP ({ulp}) in {q}",
                    r.layer
                );
            }
        }
    }
}
