//! PS hot-path pins: the im2col/GEMM fast kernels must actually be fast,
//! and nothing about threading may change the numbers.
//!
//! * `fast_path_speedup_…` — batch-32 ODENet-20 on the pure-software
//!   `PsSoftware` backend must run ≥2× faster wall-clock on the fast
//!   path than on the retained scalar reference path, with bit-identical
//!   logits. The 2× threshold is deliberately conservative: the measured
//!   margin on a single x86 core is ~13× (see `repro -- hotpath` /
//!   `benches/hotpath.rs`), so the pin survives slow CI machines while
//!   still catching a regression that silently reroutes the hot path.
//! * `thread_count_invariance_…` — logits and modelled `RunReport`
//!   timings are identical under `par::set_threads(1)` and
//!   `set_threads(8)`, for both a PsSoftware and a Hybrid batch. Batch
//!   parallelism writes into disjoint per-image slots and the timing
//!   model is input-independent, so any divergence is a bug.
//!
//! Both tests mutate process-global state (`set_force_reference`,
//! `set_threads`), so they serialize on one mutex.

use std::sync::Mutex;
use std::time::Instant;

use rodenet::{NetSpec, Network, Variant};
use tensor::conv::set_force_reference;
use tensor::{par, Shape4, Tensor};
use zynq_sim::engine::{Engine, Offload, RunReport};
use zynq_sim::planner::OffloadTarget;

/// Serializes tests that flip process-global knobs.
static GLOBAL_KNOBS: Mutex<()> = Mutex::new(());

fn images(count: usize, hw: usize, seed: u64) -> Vec<Tensor<f32>> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    (0..count)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(seed + i as u64);
            Tensor::from_fn(Shape4::new(1, 3, hw, hw), |_, _, _, _| {
                rng.random::<f32>() * 2.0 - 1.0
            })
        })
        .collect()
}

fn assert_reports_identical(a: &[RunReport], b: &[RunReport]) {
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.logits.as_slice(), rb.logits.as_slice(), "logits");
        assert_eq!(ra.ps_seconds, rb.ps_seconds, "modelled PS seconds");
        assert_eq!(ra.pl_seconds, rb.pl_seconds, "modelled PL seconds");
        assert_eq!(ra.dma_words, rb.dma_words, "DMA words");
        assert_eq!(ra.offloaded, rb.offloaded, "offloaded layers");
        assert_eq!(ra.backend, rb.backend, "backend name");
    }
}

#[test]
fn fast_path_speedup_at_least_2x_batch32_ps_software() {
    let _guard = GLOBAL_KNOBS.lock().unwrap_or_else(|p| p.into_inner());
    let net = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(100), 11);
    let engine = Engine::builder(&net)
        .offload(Offload::Target(OffloadTarget::None))
        .build()
        .expect("pure-software placement always fits");
    let batch = images(32, 32, 4242);

    // Warm both paths once (page in weights, allocators), then time.
    // min-of-2 for the fast path damps scheduler noise; the reference
    // path is expensive enough that a single timed run is stable.
    set_force_reference(true);
    let reference_runs = engine.infer_batch(&batch).expect("reference batch");
    let t0 = Instant::now();
    let reference_runs2 = engine.infer_batch(&batch).expect("reference batch");
    let reference_secs = t0.elapsed().as_secs_f64();
    set_force_reference(false);

    let fast_runs = engine.infer_batch(&batch).expect("fast batch");
    let mut fast_secs = f64::INFINITY;
    for _ in 0..2 {
        let t0 = Instant::now();
        let runs = engine.infer_batch(&batch).expect("fast batch");
        fast_secs = fast_secs.min(t0.elapsed().as_secs_f64());
        assert_reports_identical(&runs, &fast_runs);
    }

    // Bit-identity first: speed means nothing if the logits moved.
    assert_reports_identical(&reference_runs, &reference_runs2);
    assert_reports_identical(&reference_runs, &fast_runs);

    assert!(
        reference_secs >= 2.0 * fast_secs,
        "fast path must be >=2x the reference: reference {reference_secs:.3}s, \
         fast {fast_secs:.3}s ({:.1}x)",
        reference_secs / fast_secs
    );
}

#[test]
fn thread_count_invariance_ps_software_and_hybrid() {
    let _guard = GLOBAL_KNOBS.lock().unwrap_or_else(|p| p.into_inner());
    let orig = par::threads();
    let net = Network::new(NetSpec::new(Variant::ROdeNet3, 20).with_classes(10), 7);
    let software = Engine::builder(&net)
        .offload(Offload::Target(OffloadTarget::None))
        .build()
        .expect("software placement fits");
    let hybrid = Engine::builder(&net)
        .offload(Offload::Target(OffloadTarget::Layer32))
        .build()
        .expect("layer3_2 fits the default board");
    let batch = images(6, 16, 99);

    for engine in [&software, &hybrid] {
        par::set_threads(1);
        let single = engine.infer_batch(&batch).expect("single-thread batch");
        par::set_threads(8);
        let pooled = engine.infer_batch(&batch).expect("8-thread batch");
        assert_reports_identical(&single, &pooled);
    }
    par::set_threads(orig);
}
