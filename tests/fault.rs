//! Acceptance suite for the fault-injection and failover subsystem
//! (ISSUE 10).
//!
//! The pinned claims:
//!
//! * **Failover** — a 4-board `Replication::Placement(2)` rack at
//!   0.8× offered load, with one group's board crashed mid-run,
//!   sustains goodput ≥ 0.45× the fault-free run after failing over;
//!   no image is silently lost (completed + dropped == admitted), and
//!   the recovery window equals the replan's priced re-broadcast plus
//!   the drain, bound to the ulp.
//! * **Numerics** — faults change *where and when* images run, never
//!   *what*: a fault-configured engine's logits are bit-identical to
//!   the fault-free engine's.
//! * **Zero-cost disabled** — the empty [`FaultPlan`] is bit-identical
//!   end to end: schedules, `ServeReport`s, and traces equal the
//!   pre-PR path.
//! * **Measurement windows** — trimming warmup/drain at 1.2× offered
//!   load reports goodput no worse than the untrimmed average.
//! * **Proptests** — degraded goodput never exceeds fault-free;
//!   availability stays in [0, 1] (and is exactly 1 for the empty
//!   plan); image conservation under arbitrary crash plans; empty-plan
//!   schedule bit-identity over random timelines.

use std::sync::OnceLock;

use odenet_suite::prelude::*;
use proptest::prelude::*;
use zynq_sim::cluster::{pipelined_schedule_released, StageTiming};
use zynq_sim::serve::serve_timeline_traced;
use zynq_sim::{faulted_schedule_released, restage_seconds};

fn rack(boards: usize) -> Cluster {
    Cluster::homogeneous(&ARTY_Z7_20, boards, Interconnect::GIGABIT_ETHERNET)
}

fn spec() -> NetSpec {
    NetSpec::new(Variant::OdeNet, 20).with_classes(100)
}

fn image(seed: u64) -> Tensor<f32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_fn(Shape4::new(1, 3, 32, 32), |_, _, _, _| {
        rng.random::<f32>() - 0.5
    })
}

/// The acceptance rack: two data-parallel placement groups on four
/// Arty boards (groups `[0, 1]` and `[2, 3]`).
fn grouped_engine(net: &Network) -> Engine<'_> {
    Engine::builder(net)
        .cluster(rack(4))
        .schedule(Schedule::Pipelined)
        .replication(Replication::Placement(2))
        .build()
        .expect("the 4-board grouped rack plans")
}

fn poisson_at(plan: &ClusterPlan, fraction: f64, images: usize) -> ServeRequest {
    ServeRequest {
        arrivals: ArrivalProcess::Poisson {
            rate: fraction / plan.bottleneck_seconds(),
        },
        images,
        dispatch: Dispatch::default(),
        seed: 42,
        window: Window::default(),
    }
}

/// Acceptance pin: kill board 3 (the second group's PL fabric) at 40%
/// of the fault-free horizon. The health monitor times the board out,
/// the drain completes the untouched in-flight images, the partition /
/// replica search replans over boards {0, 1, 2}, and serving resumes
/// — at ≥ 0.45× the fault-free goodput, without losing a single image
/// to silence, with the recovery window priced exactly as
/// drain + re-broadcast.
#[test]
fn crashing_one_groups_board_fails_over_at_half_goodput() {
    let net = Network::new(spec(), 2024);
    let engine = grouped_engine(&net);
    let plan = engine.cluster_plan().expect("keeps its plan");
    let req = poisson_at(plan, 0.8, 256);

    let free = engine.serve(&req).expect("fault-free serve");
    assert!(free.availability.is_none(), "fault-free has no section");

    let crash_at = 0.4 * free.horizon;
    let faults = FaultPlan::new(vec![FaultEvent::BoardCrash {
        board: 3,
        at: crash_at,
    }]);
    let faulted = serve_faulted(plan, &req, &faults, &HealthPolicy::default(), false)
        .expect("the faulted serve completes");

    // Goodput survives the failover.
    assert!(
        faulted.goodput >= 0.45 * free.goodput,
        "faulted goodput {:.2} img/s < 0.45× fault-free {:.2} img/s",
        faulted.goodput,
        free.goodput
    );

    // Conservation: every admitted image is either completed or
    // explicitly dropped — never silently lost.
    let avail = faulted.availability.as_ref().expect("availability section");
    assert_eq!(avail.completed + avail.dropped, req.images);
    assert_eq!(avail.completed, faulted.images);
    assert_eq!(avail.dropped, 0, "3 surviving boards drop nothing");
    assert!(avail.availability > 0.0 && avail.availability < 1.0);

    // Exactly one failover, against the board we killed.
    assert_eq!(avail.failovers.len(), 1);
    let rec = &avail.failovers[0];
    assert_eq!(rec.board, 3);
    assert_eq!(rec.crash_at, crash_at);
    assert!(rec.detect_at > rec.crash_at, "detection is never free");
    assert!(!rec.degraded, "three boards still carry the PL placement");

    // The recovery window is the drain plus the replan's priced
    // re-broadcast — the same f64 sum, so equality holds to the ulp.
    assert_eq!(
        rec.recovery_seconds.to_bits(),
        (rec.drain_seconds + rec.rebroadcast_seconds).to_bits()
    );
    assert!(rec.resume_at >= rec.detect_at + rec.rebroadcast_seconds);

    // ... and the re-broadcast is exactly what re-staging the
    // survivor replan costs: rebuild the identical request the
    // orchestrator issues and price it independently.
    let creq = ClusterRequest {
        cluster: Cluster::new(
            plan.cluster().boards()[..3].to_vec(),
            *plan.cluster().interconnect(),
        ),
        offload: Offload::Auto,
        bn: plan.bn_mode(),
        ps: *plan.ps_model(),
        pl: *plan.pl_model(),
        precision: *plan.precision(),
        schedule: plan.schedule(),
        partitioner: plan.partitioner(),
        replication: Replication::Auto,
    };
    let replan = plan_cluster(plan.spec(), &creq).expect("3 survivors plan");
    assert_eq!(
        rec.rebroadcast_seconds.to_bits(),
        restage_seconds(&replan).to_bits()
    );
}

/// Faults never touch numerics: the logits of an engine configured
/// with a fault plan are bit-identical to the fault-free engine's.
#[test]
fn completed_logits_are_bit_identical_to_fault_free() {
    let net = Network::new(spec(), 2024);
    let free = grouped_engine(&net);
    let faulted = Engine::builder(&net)
        .cluster(rack(4))
        .schedule(Schedule::Pipelined)
        .replication(Replication::Placement(2))
        .faults(FaultPlan::new(vec![
            FaultEvent::BoardCrash { board: 3, at: 0.5 },
            FaultEvent::BoardSlowdown {
                board: 1,
                at: 0.1,
                factor: 2.0,
                duration: 0.4,
            },
        ]))
        .build()
        .expect("a valid fault plan builds");
    for seed in 0..3u64 {
        let x = image(seed);
        let a = faulted.infer(&x).expect("faulted engine runs");
        let b = free.infer(&x).expect("fault-free engine runs");
        assert_eq!(a.logits.as_slice(), b.logits.as_slice(), "seed {seed}");
    }
}

/// The engine route: `EngineBuilder::faults` + `Engine::serve` carries
/// the availability section and the fault markers in the trace.
#[test]
fn engine_serve_reports_availability_and_traces_faults() {
    let net = Network::new(spec(), 2024);
    let plan = grouped_engine(&net).cluster_plan().expect("plan").clone();
    let free = grouped_engine(&net)
        .serve(&poisson_at(&plan, 0.8, 96))
        .expect("fault-free serve");
    let crash_at = 0.4 * free.horizon;
    let engine = Engine::builder(&net)
        .cluster(rack(4))
        .schedule(Schedule::Pipelined)
        .replication(Replication::Placement(2))
        .faults(FaultPlan::new(vec![
            FaultEvent::BoardCrash {
                board: 3,
                at: crash_at,
            },
            FaultEvent::LinkDegrade {
                at: 0.0,
                bandwidth_factor: 0.5,
                duration: crash_at,
            },
        ]))
        .trace(true)
        .build()
        .expect("builds");
    let report = engine.serve(&poisson_at(&plan, 0.8, 96)).expect("serves");
    let avail = report.availability.as_ref().expect("availability section");
    assert_eq!(avail.completed + avail.dropped, 96);
    assert_eq!(avail.failovers.len(), 1);
    assert!(avail.describe().contains("failover"));

    let trace = report.trace().expect("tracing was requested");
    let kinds: Vec<_> = trace.faults.iter().map(|e| format!("{e:?}")).collect();
    assert!(
        kinds.iter().any(|k| k.contains("FaultInjected")),
        "{kinds:?}"
    );
    assert!(
        kinds.iter().any(|k| k.contains("FailoverStart")),
        "{kinds:?}"
    );
    assert!(kinds.iter().any(|k| k.contains("FailoverEnd")), "{kinds:?}");
    let json = trace.to_chrome_json();
    check_chrome_json(&json).expect("well-formed Chrome trace");
    assert!(json.contains("crash board 3"), "fault instants exported");
    assert!(json.contains("failover start (board 3)"));
    assert!(json.contains("link degrade"));
}

/// Zero cost when disabled: with the empty plan, the low-level
/// schedule, the serve report, and the trace are all bit-identical to
/// the pre-existing fault-free path.
#[test]
fn empty_plan_is_bit_identical_end_to_end() {
    let net = Network::new(spec(), 2024);
    let engine = grouped_engine(&net);
    let plan = engine.cluster_plan().expect("plan");
    let req = poisson_at(plan, 0.8, 128);

    let free = serve_timeline_traced(plan.timeline(), &req, true).expect("fault-free");
    let faulted = serve_faulted(
        plan,
        &req,
        &FaultPlan::none(),
        &HealthPolicy::default(),
        true,
    )
    .expect("empty plan serves");
    assert_eq!(free, faulted, "ServeReports (incl. traces) are equal");

    // The engine route with an explicit empty plan matches too.
    let explicit = Engine::builder(&net)
        .cluster(rack(4))
        .schedule(Schedule::Pipelined)
        .replication(Replication::Placement(2))
        .faults(FaultPlan::none())
        .build()
        .expect("builds");
    assert_eq!(
        engine.serve(&req).expect("serves"),
        explicit.serve(&req).expect("serves")
    );
}

/// Every `InvalidFaultPlan` rejection, via the builder: the error is
/// typed, names the offending event, and explains itself.
#[test]
fn invalid_fault_plans_are_rejected_with_actionable_errors() {
    let net = Network::new(spec(), 2024);
    let build = |events: Vec<FaultEvent>| {
        Engine::builder(&net)
            .cluster(rack(4))
            .schedule(Schedule::Pipelined)
            .faults(FaultPlan::new(events))
            .build()
            .map(|_| ())
    };
    let expect_invalid = |events: Vec<FaultEvent>, needle: &str| {
        let err = build(events).expect_err("must be rejected");
        assert!(
            matches!(err, EngineError::InvalidFaultPlan { .. }),
            "{err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains(needle), "{msg:?} lacks {needle:?}");
    };

    expect_invalid(
        vec![FaultEvent::BoardCrash { board: 9, at: 0.1 }],
        "board 9",
    );
    expect_invalid(
        vec![FaultEvent::BoardHang {
            board: 0,
            at: 0.1,
            duration: 0.0,
        }],
        "duration",
    );
    expect_invalid(
        vec![FaultEvent::BoardSlowdown {
            board: 0,
            at: 0.1,
            factor: 0.5,
            duration: 1.0,
        }],
        "factor",
    );
    expect_invalid(
        vec![FaultEvent::LinkDegrade {
            at: 0.1,
            bandwidth_factor: 1.5,
            duration: 1.0,
        }],
        "bandwidth",
    );
    expect_invalid(
        vec![
            FaultEvent::BoardHang {
                board: 2,
                at: 0.0,
                duration: 1.0,
            },
            FaultEvent::BoardSlowdown {
                board: 2,
                at: 0.5,
                factor: 2.0,
                duration: 1.0,
            },
        ],
        "overlap",
    );

    // Event indices point at the offender.
    let err = build(vec![
        FaultEvent::BoardHang {
            board: 0,
            at: 0.0,
            duration: 1.0,
        },
        FaultEvent::BoardCrash { board: 7, at: 0.1 },
    ])
    .expect_err("rejected");
    assert!(err.to_string().contains("event #1"), "{err}");

    // Fault injection needs a cluster deployment.
    let err = Engine::builder(&net)
        .board(&PYNQ_Z2)
        .faults(FaultPlan::new(vec![FaultEvent::BoardCrash {
            board: 0,
            at: 0.1,
        }]))
        .build()
        .expect_err("single-board engines cannot inject faults");
    assert!(err.to_string().contains("cluster"), "{err}");

    // An unusable health policy is typed the same way.
    let err = Engine::builder(&net)
        .cluster(rack(2))
        .schedule(Schedule::Pipelined)
        .faults(FaultPlan::new(vec![FaultEvent::BoardCrash {
            board: 0,
            at: 0.1,
        }]))
        .health(HealthPolicy { timeout: 0.0 })
        .build()
        .expect_err("a zero timeout never detects anything");
    assert!(
        matches!(err, EngineError::InvalidFaultPlan { .. }),
        "{err:?}"
    );
}

/// Measurement windows: invalid fractions are typed `InvalidServe`;
/// the whole-horizon default reports `None`; and at 1.2× offered load,
/// trimming the cold-start warmup and the draining tail reports
/// steady-state goodput no worse than the untrimmed average.
#[test]
fn measurement_window_trims_warmup_and_drain() {
    let net = Network::new(spec(), 2024);
    let engine = grouped_engine(&net);
    let plan = engine.cluster_plan().expect("plan");

    // Invalid fractions are rejected before any virtual time passes.
    for window in [
        Window {
            warmup_fraction: -0.1,
            drain_fraction: 0.0,
        },
        Window {
            warmup_fraction: 0.6,
            drain_fraction: 0.4,
        },
        Window {
            warmup_fraction: f64::NAN,
            drain_fraction: 0.0,
        },
    ] {
        let mut req = poisson_at(plan, 0.8, 32);
        req.window = window;
        let err = engine.serve(&req).expect_err("rejected");
        assert!(matches!(err, EngineError::InvalidServe { .. }), "{err:?}");
        assert!(err.to_string().contains("measurement-window"), "{err}");
    }

    // The default window is the whole horizon: no report.
    let untrimmed = engine
        .serve(&poisson_at(plan, 1.2, 256))
        .expect("overloaded serve");
    assert!(untrimmed.window.is_none());

    // Trimmed steady state ≥ untrimmed average at 1.2× load: the
    // untrimmed figure dilutes the overloaded steady state with the
    // cold-start ramp.
    let mut req = poisson_at(plan, 1.2, 256);
    req.window = Window {
        warmup_fraction: 0.2,
        drain_fraction: 0.1,
    };
    let trimmed = engine.serve(&req).expect("overloaded serve");
    let window = trimmed.window.expect("a trimmed window reports");
    assert!(window.start > 0.0 && window.end < trimmed.horizon);
    assert!(
        window.goodput >= trimmed.goodput,
        "trimmed {:.3} img/s < untrimmed {:.3} img/s",
        window.goodput,
        trimmed.goodput
    );
    // Trimming never changes the run itself.
    assert_eq!(untrimmed.goodput.to_bits(), trimmed.goodput.to_bits());
}

/// A shared 2-board plan for the serve-level proptests (planning once
/// keeps the 64-case loops fast).
fn small_plan() -> &'static ClusterPlan {
    static PLAN: OnceLock<ClusterPlan> = OnceLock::new();
    PLAN.get_or_init(|| {
        let net = Network::new(spec(), 7);
        let engine = Engine::builder(&net)
            .cluster(rack(2))
            .schedule(Schedule::Pipelined)
            .build()
            .expect("2-board rack plans");
        let plan = engine.cluster_plan().expect("keeps its plan").clone();
        plan
    })
}

/// A random chain: stage `j` on its own resource (`Ps` for the head,
/// `Pl(j − 1)` after), the shape a sharded placement's segments take.
/// Distinct per-stage resources keep greedy list scheduling free of
/// Graham timing anomalies, so fault monotonicity holds per finish.
fn chain_timeline() -> impl Strategy<Value = Vec<StageTiming>> {
    use zynq_sim::cluster::StageResource;
    prop::collection::vec((0.001f64..0.3, 0.0f64..0.01), 1..6).prop_map(|stages| {
        stages
            .into_iter()
            .enumerate()
            .map(|(j, (seconds, transfer_in))| StageTiming {
                resource: if j == 0 {
                    StageResource::Ps
                } else {
                    StageResource::Pl(j - 1)
                },
                layer: None,
                seconds,
                transfer_in,
                replicas: Vec::new(),
            })
            .collect()
    })
}

/// Degradation-only fault plans (slowdowns, hangs, link degrades) with
/// event `k` windowed inside `[10k, 10k + 9)` — disjoint by
/// construction, so any mix is a valid plan.
fn degrade_events(boards: usize) -> impl Strategy<Value = Vec<FaultEvent>> {
    prop::collection::vec(
        (
            0usize..3,
            0usize..boards,
            1.0f64..4.0,
            0.05f64..5.0,
            0.1f64..1.0,
        ),
        0..4,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(k, (kind, board, factor, duration, bandwidth_factor))| {
                let at = k as f64 * 10.0;
                match kind {
                    0 => FaultEvent::BoardSlowdown {
                        board,
                        at,
                        factor,
                        duration,
                    },
                    1 => FaultEvent::BoardHang {
                        board,
                        at,
                        duration,
                    },
                    _ => FaultEvent::LinkDegrade {
                        at,
                        bandwidth_factor,
                        duration,
                    },
                }
            })
            .collect()
    })
}

/// Random crash plans over the 2-board rack (possibly crashing
/// everything).
fn crash_events() -> impl Strategy<Value = Vec<FaultEvent>> {
    prop::collection::vec((0usize..2, 0.0f64..3.0), 0..3).prop_map(|raw| {
        raw.into_iter()
            .map(|(board, at)| FaultEvent::BoardCrash { board, at })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Degradation can only push work later: on a chain with distinct
    /// per-stage resources, every faulted finish is at least the
    /// fault-free finish, so the makespan — and therefore goodput —
    /// never improves under faults.
    #[test]
    fn faulted_finishes_never_beat_fault_free(
        timeline in chain_timeline(),
        events in degrade_events(5),
        gaps in prop::collection::vec(0.0f64..0.2, 1..24),
    ) {
        let mut t = 0.0;
        let releases: Vec<f64> = gaps.iter().map(|g| { t += g; t }).collect();
        let base = pipelined_schedule_released(&timeline, &releases);
        let faulted =
            faulted_schedule_released(&timeline, &releases, &FaultPlan::new(events));
        for (i, (b, f)) in base.finishes.iter().zip(&faulted.finishes).enumerate() {
            prop_assert!(f >= b, "image {i}: faulted {f} < fault-free {b}");
        }
        prop_assert!(faulted.makespan >= base.makespan);
    }

    /// The empty plan is bit-identical for *any* timeline — not only
    /// the acceptance fixture.
    #[test]
    fn empty_plan_schedules_bit_identical_for_any_timeline(
        timeline in chain_timeline(),
        gaps in prop::collection::vec(0.0f64..0.2, 1..24),
    ) {
        let mut t = 0.0;
        let releases: Vec<f64> = gaps.iter().map(|g| { t += g; t }).collect();
        let base = pipelined_schedule_released(&timeline, &releases);
        let faulted =
            faulted_schedule_released(&timeline, &releases, &FaultPlan::none());
        prop_assert_eq!(base.makespan.to_bits(), faulted.makespan.to_bits());
        for (b, f) in base.finishes.iter().zip(&faulted.finishes) {
            prop_assert_eq!(b.to_bits(), f.to_bits());
        }
        for (b, f) in base.starts.iter().zip(&faulted.starts) {
            prop_assert_eq!(b.to_bits(), f.to_bits());
        }
    }
}

proptest! {
    // Serve-level cases replan on every crash; a smaller case count
    // keeps the debug-build suite quick.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation and bounded availability under arbitrary crash
    /// plans — including total outages: completed + dropped always
    /// equals the admitted stream, availability stays within [0, 1],
    /// and an empty plan reports exactly 1.
    #[test]
    fn crashes_conserve_images_and_bound_availability(
        events in crash_events(),
        images in 8usize..48,
    ) {
        let plan = small_plan();
        let req = ServeRequest {
            arrivals: ArrivalProcess::Poisson {
                rate: 0.8 / plan.bottleneck_seconds(),
            },
            images,
            dispatch: Dispatch::default(),
            seed: 11,
            window: Window::default(),
        };
        let faults = FaultPlan::new(events);
        let report = serve_faulted(plan, &req, &faults, &HealthPolicy::default(), false)
            .expect("crash plans always serve");
        if faults.is_empty() {
            prop_assert!(report.availability.is_none());
            prop_assert_eq!(report.availability_fraction(), 1.0);
            prop_assert_eq!(report.images, images);
        } else {
            let avail = report.availability.as_ref().expect("section");
            prop_assert_eq!(avail.completed + avail.dropped, images);
            prop_assert!(
                (0.0..=1.0).contains(&avail.availability),
                "availability {}",
                avail.availability
            );
        }
    }

    /// A degraded serve never reports more goodput than the fault-free
    /// run of the same request (crash-free plans keep every image, so
    /// the horizon can only stretch).
    #[test]
    fn degraded_goodput_never_exceeds_fault_free(events in degrade_events(2)) {
        let plan = small_plan();
        let req = ServeRequest {
            arrivals: ArrivalProcess::Poisson {
                rate: 0.8 / plan.bottleneck_seconds(),
            },
            images: 32,
            dispatch: Dispatch::default(),
            seed: 13,
            window: Window::default(),
        };
        let free = serve_faulted(plan, &req, &FaultPlan::none(), &HealthPolicy::default(), false)
            .expect("fault-free");
        let faulted =
            serve_faulted(plan, &req, &FaultPlan::new(events), &HealthPolicy::default(), false)
                .expect("degraded");
        prop_assert_eq!(faulted.images, free.images, "no crash drops images");
        prop_assert!(
            faulted.goodput <= free.goodput * (1.0 + 1e-12),
            "faulted {} > fault-free {}",
            faulted.goodput,
            free.goodput
        );
    }
}
