//! Cross-crate integration tests pinning every *exactly reproducible*
//! number in the paper, plus the within-rounding Table 5 cells.
//! EXPERIMENTS.md cites this file as the machine-checked record.

use odenet_suite::prelude::*;
use rodenet::params::{block_kb, reduction_vs_resnet, spec_params};
use zynq_sim::datapath::conv_cycles;
use zynq_sim::resources::layer_geom;
use zynq_sim::timing::speedup_vs_resnet;

/// Table 2: the seven parameter sizes, to the printed 0.01 kB.
#[test]
fn table2_all_seven_sizes() {
    let kb2 = |v: f64| (v * 100.0).round() / 100.0;
    let expect = [
        (LayerName::Conv1, false, 1.86),
        (LayerName::Layer1, true, 19.84),
        (LayerName::Layer2_1, false, 55.81),
        (LayerName::Layer2_2, true, 76.54),
        (LayerName::Layer3_1, false, 222.21),
        (LayerName::Layer3_2, true, 300.54),
        (LayerName::Fc, false, 26.00),
    ];
    for (layer, ode, kb) in expect {
        assert_eq!(kb2(block_kb(layer, ode, 100)), kb, "{layer}");
    }
}

/// Table 4: the equal-compute invariant and per-variant execution counts
/// for all paper depths.
#[test]
fn table4_execution_algebra() {
    for n in PAPER_DEPTHS {
        let blocks = (n - 2) / 6 + 2 + 2 * ((n - 8) / 6);
        for v in Variant::ALL {
            assert_eq!(
                NetSpec::new(v, n).total_block_execs(),
                blocks,
                "{v}-{n} equal-compute rule"
            );
        }
    }
    let s = NetSpec::new(Variant::ROdeNet3, 44);
    assert_eq!(s.layer3_2.execs, 18);
    let s = NetSpec::new(Variant::ROdeNet12, 32);
    assert_eq!((s.layer1.execs, s.layer2_2.execs), (7, 6));
}

/// §4.2: the six quoted reduction percentages, to the printed 0.01 %.
#[test]
fn section42_reductions() {
    let cases = [
        (Variant::OdeNet, 20, 36.24),
        (Variant::ROdeNet3, 20, 43.29),
        (Variant::OdeNet, 56, 79.54),
        (Variant::ROdeNet3, 56, 81.80),
        (Variant::Hybrid3, 20, 26.43),
        (Variant::Hybrid3, 56, 60.16),
    ];
    for (v, n, expect) in cases {
        let got = reduction_vs_resnet(v, n);
        assert!(
            (got - expect).abs() < 0.005,
            "{v}-{n}: {got:.3} vs {expect}"
        );
    }
}

/// §3.1: layer3_2 cycle counts; four cells exact, conv_x8 within the
/// paper's rounding.
#[test]
fn section31_cycles() {
    let g = layer_geom(LayerName::Layer3_2);
    assert_eq!(2 * conv_cycles(g, 1), 23_779_456);
    assert_eq!(2 * conv_cycles(g, 4), 6_066_304);
    assert_eq!(2 * conv_cycles(g, 16), 1_638_016);
    assert_eq!(2 * conv_cycles(g, 32), 899_968);
    let x8 = 2 * conv_cycles(g, 8);
    assert!((x8 as f64 / 1e6 - 3.12).abs() < 0.011, "conv_x8 {x8}");
}

/// Table 3: every BRAM and DSP cell, exactly.
#[test]
fn table3_bram_dsp() {
    let cells = [
        (LayerName::Layer1, [56.0, 56.0, 56.0, 64.0]),
        (LayerName::Layer2_2, [56.0, 56.0, 56.0, 56.0]),
        (LayerName::Layer3_2, [140.0, 140.0, 140.0, 140.0]),
    ];
    for (layer, brams) in cells {
        for (i, n) in [1usize, 4, 8, 16].iter().enumerate() {
            let r = ode_block_resources(layer, *n);
            assert_eq!(r.bram36_used(), brams[i], "{layer} conv_x{n} BRAM");
            assert_eq!(r.dsp, (4 * n + 4) as u32, "{layer} conv_x{n} DSP");
        }
    }
}

/// Table 3: LUT/FF characterization table is served verbatim.
#[test]
fn table3_lut_ff_characterized() {
    let r = ode_block_resources(LayerName::Layer3_2, 16);
    assert_eq!((r.lut, r.ff), (12_720, 6_378));
    let r = ode_block_resources(LayerName::Layer1, 1);
    assert_eq!((r.lut, r.ff), (1_486, 835));
}

/// Table 5: every "Total w/o PL" and "Target w/ PL" cell within the
/// paper's printed rounding plus its own measurement scatter (±0.02 s),
/// and every speedup within ±0.1×.
#[test]
fn table5_all_rows() {
    let expected: &[(Variant, usize, f64, f64, f64)] = &[
        // (variant, n, total_wo, total_w, speedup)
        (Variant::ROdeNet1, 20, 0.57, 0.28, 1.99),
        (Variant::ROdeNet1, 32, 0.94, 0.42, 2.26),
        (Variant::ROdeNet1, 44, 1.30, 0.55, 2.37),
        (Variant::ROdeNet1, 56, 1.67, 0.68, 2.45),
        (Variant::ROdeNet2, 20, 0.52, 0.30, 1.75),
        (Variant::ROdeNet2, 32, 0.86, 0.41, 2.08),
        (Variant::ROdeNet2, 44, 1.19, 0.52, 2.28),
        (Variant::ROdeNet2, 56, 1.52, 0.63, 2.40),
        (Variant::ROdeNet12, 20, 0.55, 0.27, 1.99),
        (Variant::ROdeNet12, 32, 0.89, 0.39, 2.24),
        (Variant::ROdeNet12, 44, 1.23, 0.52, 2.38),
        (Variant::ROdeNet12, 56, 1.60, 0.64, 2.52),
        (Variant::ROdeNet3, 20, 0.54, 0.29, 1.85),
        (Variant::ROdeNet3, 32, 0.88, 0.39, 2.26),
        (Variant::ROdeNet3, 44, 1.23, 0.49, 2.50),
        (Variant::ROdeNet3, 56, 1.57, 0.59, 2.66),
        (Variant::OdeNet, 20, 0.56, 0.47, 1.18),
        (Variant::OdeNet, 32, 0.90, 0.74, 1.23),
        (Variant::OdeNet, 44, 1.25, 1.00, 1.24),
        (Variant::OdeNet, 56, 1.60, 1.27, 1.26),
        (Variant::Hybrid3, 20, 0.53, 0.44, 1.19),
        (Variant::Hybrid3, 32, 0.88, 0.71, 1.24),
        (Variant::Hybrid3, 44, 1.23, 0.99, 1.25),
        (Variant::Hybrid3, 56, 1.56, 1.23, 1.27),
    ];
    for &(v, n, total_wo, total_w, speedup) in expected {
        let r = paper_row(v, n);
        assert!(
            (r.total_wo_pl - total_wo).abs() < 0.025,
            "{v}-{n} total w/o: {:.3} vs paper {total_wo}",
            r.total_wo_pl
        );
        assert!(
            (r.total_w_pl - total_w).abs() < 0.025,
            "{v}-{n} total w/: {:.3} vs paper {total_w}",
            r.total_w_pl
        );
        assert!(
            (r.speedup - speedup).abs() < 0.12,
            "{v}-{n} speedup: {:.3} vs paper {speedup}",
            r.speedup
        );
    }
}

/// The summary quotes: 2.66× vs own software, 2.67× vs ResNet-56.
#[test]
fn summary_speedups() {
    let r = paper_row(Variant::ROdeNet3, 56);
    assert!((r.speedup - 2.66).abs() < 0.1);
    let cross = speedup_vs_resnet(&r, &PsModel::Calibrated, &PYNQ_Z2);
    assert!((cross - 2.67).abs() < 0.1);
    // And the weakest row: Hybrid-3-20 still gains ≥ 1.19×.
    let h = paper_row(Variant::Hybrid3, 20);
    assert!(h.speedup > 1.15);
}

/// Figure 5: ODENet/rODENet sizes are flat in N; ResNet/Hybrid grow.
#[test]
fn fig5_shape() {
    use rodenet::params::spec_kb;
    for v in [
        Variant::OdeNet,
        Variant::ROdeNet1,
        Variant::ROdeNet2,
        Variant::ROdeNet12,
        Variant::ROdeNet3,
    ] {
        let k20 = spec_kb(&NetSpec::new(v, 20));
        let k56 = spec_kb(&NetSpec::new(v, 56));
        assert_eq!(k20, k56, "{v} must be depth-independent");
    }
    for v in [Variant::ResNet, Variant::Hybrid3] {
        assert!(
            spec_kb(&NetSpec::new(v, 56)) > spec_kb(&NetSpec::new(v, 20)),
            "{v} must grow with depth"
        );
    }
}

/// Network instances carry exactly the parameters the accounting says.
#[test]
fn networks_match_accounting() {
    for v in Variant::ALL {
        for n in [20usize, 44] {
            let spec = NetSpec::new(v, n);
            let net = Network::new(spec, 0);
            assert_eq!(net.param_count(), spec_params(&spec), "{v}-{n}");
        }
    }
}
