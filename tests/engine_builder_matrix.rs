//! Builder misuse matrix: every `PlFormat` × `BackendKind` × `BnMode`
//! (× placement policy) combination must resolve to either a working
//! engine or a **typed** [`EngineError`] — never a panic, never a
//! silently wrong configuration.

use odenet_suite::prelude::*;
use qfixed::QFormat;

fn formats() -> Vec<PlFormat> {
    vec![
        PlFormat::Q20,
        PlFormat::Q16 { frac: 6 },
        PlFormat::Q16 { frac: 10 },
        PlFormat::Q16 { frac: 12 },
        PlFormat::Q16 { frac: 15 },             // valid but no datapath
        PlFormat::Custom(QFormat::new(32, 16)), // executable custom
        PlFormat::Custom(QFormat::new(32, 24)), // executable custom
        PlFormat::Custom(QFormat::new(8, 4)),   // analysis-only width
        PlFormat::Custom(QFormat::new(24, 12)), // analysis-only width
        PlFormat::Custom(QFormat {
            total_bits: 16,
            frac_bits: 16,
        }), // degenerate (frac == total)
        PlFormat::Custom(QFormat {
            total_bits: 0,
            frac_bits: 0,
        }), // degenerate (zero width)
    ]
}

/// Whether a format has a monomorphized datapath in the engine —
/// derived from the engine's own single source of truth
/// (`PlFormat::EXECUTABLE_WIDTHS`); the matrix below cross-checks it
/// against what `build()` actually accepts.
fn executable(f: &PlFormat) -> bool {
    f.has_datapath()
}

fn degenerate(f: &PlFormat) -> bool {
    f.is_degenerate()
}

#[test]
fn full_matrix_is_total_and_typed() {
    let net = Network::new(NetSpec::new(Variant::ROdeNet3, 20).with_classes(10), 7);
    let backends = [
        BackendKind::Auto,
        BackendKind::PsSoftware,
        BackendKind::Hybrid,
        BackendKind::PlBitExact,
    ];
    let offloads = [
        Offload::Auto,
        Offload::Target(OffloadTarget::None),
        Offload::Target(OffloadTarget::Layer32),
        Offload::Target(OffloadTarget::AllOde),
    ];
    let mut built = 0usize;
    let mut rejected = 0usize;
    for format in formats() {
        for backend in backends {
            for bn in [BnMode::OnTheFly, BnMode::Running] {
                for offload in offloads {
                    let result = Engine::builder(&net)
                        .precision(format)
                        .backend(backend)
                        .bn_mode(bn)
                        .offload(offload)
                        .build();
                    match result {
                        Ok(engine) => {
                            built += 1;
                            assert!(!degenerate(&format), "degenerate formats never build");
                            // A quantized datapath only exists for the
                            // monomorphized widths.
                            if engine.backend_name() != "ps-software" {
                                assert!(
                                    executable(&format),
                                    "{format:?} has no datapath but built {}",
                                    engine.backend_name()
                                );
                            }
                            // A built engine must actually serve.
                            let x = Tensor::<f32>::zeros(Shape4::new(1, 3, 8, 8));
                            engine.infer(&x).expect("built engines infer");
                        }
                        Err(e) => {
                            rejected += 1;
                            // Every rejection is one of the documented,
                            // matchable error values.
                            assert!(
                                matches!(
                                    e,
                                    EngineError::InfeasiblePlacement { .. }
                                        | EngineError::TargetNotApplicable { .. }
                                        | EngineError::BackendConflict { .. }
                                        | EngineError::BnModeConflict { .. }
                                        | EngineError::UnsupportedFormat { .. }
                                ),
                                "unexpected error shape: {e:?}"
                            );
                            if matches!(e, EngineError::UnsupportedFormat { .. }) {
                                assert!(
                                    degenerate(&format) || !executable(&format),
                                    "{format:?} rejected as unsupported but is executable"
                                );
                            }
                            // And it formats without panicking.
                            let _ = e.to_string();
                        }
                    }
                }
            }
        }
    }
    assert_eq!(built + rejected, 11 * 4 * 2 * 4, "matrix is total");
    assert!(built > 0 && rejected > 0);
}

/// The specific conflict classes, pinned one by one.
#[test]
fn conflict_classes_are_the_documented_errors() {
    let net = Network::new(NetSpec::new(Variant::ROdeNet3, 20).with_classes(10), 8);

    // Degenerate formats fail even planning.
    let err = Engine::builder(&net)
        .precision(PlFormat::Q16 { frac: 16 })
        .plan()
        .expect_err("frac == total bits");
    assert_eq!(
        err,
        EngineError::UnsupportedFormat {
            total_bits: 16,
            frac_bits: 16,
            stage: None
        }
    );

    // Analysis-only widths plan but do not build.
    let b = Engine::builder(&net).precision(PlFormat::Custom(QFormat::new(24, 12)));
    assert!(b.plan().is_ok());
    assert!(matches!(
        b.build(),
        Err(EngineError::UnsupportedFormat {
            total_bits: 24,
            frac_bits: 12,
            stage: None
        })
    ));

    // PS software cannot host PL stages, at any width.
    for format in [PlFormat::Q20, PlFormat::Q16 { frac: 10 }] {
        let err = Engine::builder(&net)
            .precision(format)
            .backend(BackendKind::PsSoftware)
            .offload(Offload::Target(OffloadTarget::Layer32))
            .build()
            .expect_err("software backend with PL stages");
        assert!(matches!(err, EngineError::BackendConflict { .. }));
    }

    // The circuit computes statistics on the fly, at any width.
    for format in [PlFormat::Q20, PlFormat::Q16 { frac: 10 }] {
        let err = Engine::builder(&net)
            .precision(format)
            .backend(BackendKind::PlBitExact)
            .bn_mode(BnMode::Running)
            .build()
            .expect_err("no running statistics on the PL");
        assert_eq!(
            err,
            EngineError::BnModeConflict {
                backend: "pl-bit-exact"
            }
        );
    }

    // Width changes feasibility: AllOde is an InfeasiblePlacement at
    // Q20 and builds at Q16 — same request, only the format differs.
    let net_ode = Network::new(NetSpec::new(Variant::OdeNet, 20).with_classes(10), 9);
    assert!(matches!(
        Engine::builder(&net_ode)
            .offload(Offload::Target(OffloadTarget::AllOde))
            .build(),
        Err(EngineError::InfeasiblePlacement { .. })
    ));
    assert!(Engine::builder(&net_ode)
        .precision(PlFormat::Q16 { frac: 10 })
        .offload(Offload::Target(OffloadTarget::AllOde))
        .build()
        .is_ok());
}
