//! Acceptance suite for the multi-board cluster backend.
//!
//! The headline scenario (ISSUE 3): ODENet-20 sharded across **two
//! simulated Arty Z7-20 boards at Q20** — a placement no single
//! XC7Z020 admits at the paper's word width — must plan, validate, and
//! infer with logits **bit-identical** to a single-board hybrid
//! execution of the same placement, and the pipelined batch schedule
//! must beat the additive one by a pinned margin. Plus the generic
//! scheduler invariants (proptest): pipelining never loses to
//! sequential execution and never beats the bottleneck bound.

use odenet_suite::prelude::*;
use proptest::prelude::*;
use zynq_sim::cluster::{
    bottleneck_seconds, per_image_seconds, pipelined_schedule, sequential_makespan, StageResource,
    StageTiming,
};
use zynq_sim::{Board, Replication, ARTY_Z7_10, ARTY_Z7_20};

fn image(seed: u64) -> Tensor<f32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_fn(Shape4::new(1, 3, 32, 32), |_, _, _, _| {
        rng.random::<f32>() - 0.5
    })
}

fn two_arty() -> Cluster {
    Cluster::homogeneous(&ARTY_Z7_20, 2, Interconnect::GIGABIT_ETHERNET)
}

/// The acceptance scenario end to end: plan → shard → validate →
/// infer, with the numerics checked against a single-board reference.
#[test]
fn odenet20_shards_across_two_arty_boards_at_q20() {
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(10);
    let net = Network::new(spec, 2024);

    // The AllOde placement is impossible on ONE board at Q20 (layer3_2
    // alone is 100 % of a XC7Z020's BRAM, Table 3)…
    let single = Engine::builder(&net)
        .board(&ARTY_Z7_20)
        .offload(Offload::Target(OffloadTarget::AllOde))
        .build();
    assert!(
        matches!(single, Err(EngineError::InfeasiblePlacement { .. })),
        "AllOde cannot fit one XC7Z020 at 32-bit"
    );

    // …but two boards shard it: layer1 + layer2_2 on board 0, layer3_2
    // on board 1 — and Auto finds that without being told.
    let engine = Engine::builder(&net)
        .cluster(two_arty())
        .build()
        .expect("two boards carry what one cannot");
    assert_eq!(engine.target(), OffloadTarget::AllOde);
    let plan = engine
        .cluster_plan()
        .expect("cluster engines keep their plan");
    assert_eq!(plan.shards().len(), 2);
    assert_eq!(plan.shards()[0].target, OffloadTarget::Layer1And22);
    assert_eq!(plan.shards()[1].target, OffloadTarget::Layer32);
    // Per-board feasibility is real: each shard fits its own fabric.
    for shard in plan.shards() {
        let bram: f64 = shard.stages.iter().map(|s| s.bram36).sum();
        assert!(
            bram <= ARTY_Z7_20.bram36 as f64,
            "board{}: {bram}",
            shard.board
        );
    }

    // Numerics: sharding changes *where*, never *what*. A single-board
    // hybrid running the same AllOde placement (on a fictitious
    // double-BRAM fabric, since no real XC7Z020 fits it at Q20)
    // computes bit-identical logits.
    let mut big = ARTY_Z7_20;
    big.bram36 *= 2;
    let reference = Engine::builder(&net)
        .board(&big)
        .offload(Offload::Target(OffloadTarget::AllOde))
        .build()
        .expect("the doubled fabric fits all three circuits");
    for seed in 0..3u64 {
        let x = image(seed);
        let a = engine.infer(&x).expect("cluster runs");
        let b = reference.infer(&x).expect("reference runs");
        assert_eq!(
            a.logits.as_slice(),
            b.logits.as_slice(),
            "seed {seed}: sharded logits must be bit-identical"
        );
        // Timing differs only by the modelled interconnect hand-offs.
        assert!((a.total_seconds() - b.total_seconds() - plan.transfer_seconds()).abs() < 1e-12);
        assert_eq!(a.dma_words, b.dma_words);
    }
}

/// The pinned throughput claim: pipelining a batch of 32 through the
/// two-board chain beats the additive schedule by at least 1.3×.
#[test]
fn pipelined_batch32_beats_sequential_by_1_3x() {
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(10);
    let net = Network::new(spec, 7);
    let sequential = Engine::builder(&net)
        .cluster(two_arty())
        .schedule(Schedule::Sequential)
        .build()
        .expect("builds");
    let pipelined = Engine::builder(&net)
        .cluster(two_arty())
        .schedule(Schedule::Pipelined)
        .build()
        .expect("builds");

    let xs: Vec<Tensor<f32>> = (0..32).map(image).collect();
    let (runs_seq, seq) = sequential
        .infer_batch_summary(&xs)
        .expect("sequential batch");
    let (runs_pipe, pipe) = pipelined.infer_batch_summary(&xs).expect("pipelined batch");

    // Same per-image reports — the schedule reorders, never recomputes.
    for (a, b) in runs_seq.iter().zip(&runs_pipe) {
        assert_eq!(a.logits.as_slice(), b.logits.as_slice());
    }
    assert_eq!(seq.images, 32);
    assert_eq!(pipe.images, 32);
    // Sequential wall-clock is the additive fold; pipelined is the
    // event-driven makespan.
    assert_eq!(seq.wall_seconds, seq.total_seconds());
    assert!(pipe.wall_seconds < seq.wall_seconds);
    let ratio = pipe.throughput() / seq.throughput();
    assert!(ratio >= 1.3, "pipelined/sequential throughput = {ratio:.3}");
    // And the plan predicts the same gain without running an image.
    let plan = pipelined.cluster_plan().unwrap();
    assert!((plan.pipeline_speedup(32) - ratio).abs() < 0.05);
    // Latency percentiles make the two schedules comparable: queueing
    // stretches pipelined per-image latency even as throughput rises.
    assert!(pipe.latency_p50 >= seq.latency_p50 - 1e-12);
    assert!(pipe.latency_max >= pipe.latency_p50);
}

/// A reduced-width cluster: at Q16 one Arty already fits AllOde, so the
/// second board adds nothing to the placement — but pipelining still
/// overlaps the PS with the PL stages.
#[test]
fn sixteen_bit_cluster_needs_only_one_board() {
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(10);
    let net = Network::new(spec, 5);
    let engine = Engine::builder(&net)
        .cluster(two_arty())
        .precision(PlFormat::Q16 { frac: 10 })
        .build()
        .expect("16-bit builds");
    let plan = engine.cluster_plan().unwrap();
    assert_eq!(plan.target(), OffloadTarget::AllOde);
    assert_eq!(plan.shards().len(), 1, "one board carries all three at Q16");
    assert_eq!(plan.transfer_seconds(), 0.0, "no inter-board hand-off");
}

/// The partitioner acceptance scenario (ISSUE 4): on a 2-board rack of
/// XC7Z020 fabrics (PYNQ-Z2 head + Arty Z7-20) at the footnote-2
/// 16-bit width, first-fit crams all three ODE circuits onto the head
/// board — they just fit — and leaves the second fabric idle, so the
/// pipelined ceiling is one board's busy time. `BalancedMakespan`
/// splits the stages across the rack; pinned: ≥ 1.15× batch-32
/// pipelined throughput (actually ≈ 1.5×), with logits bit-identical
/// between the partitioners — the search changes *where*, never *what*.
#[test]
fn balanced_partitioner_beats_first_fit_by_1_15x_on_two_board_rack() {
    let spec = NetSpec::new(Variant::OdeNet, 56).with_classes(10);
    let net = Network::new(spec, 11);
    let rack = || Cluster::new(vec![PYNQ_Z2, ARTY_Z7_20], Interconnect::GIGABIT_ETHERNET);
    let build = |partitioner: Partitioner| {
        Engine::builder(&net)
            .cluster(rack())
            .precision(PlFormat::Q16 { frac: 10 })
            .schedule(Schedule::Pipelined)
            .partitioner(partitioner)
            .build()
            .expect("AllOde fits the rack at Q16")
    };
    let first_fit = build(Partitioner::FirstFit);
    let balanced = build(Partitioner::BalancedMakespan);

    // Same resolved placement, different assignment: first-fit leaves
    // board 1 idle, the balanced search puts both fabrics to work.
    assert_eq!(first_fit.target(), OffloadTarget::AllOde);
    assert_eq!(balanced.target(), OffloadTarget::AllOde);
    let ff_plan = first_fit.cluster_plan().expect("keeps its plan");
    let bal_plan = balanced.cluster_plan().expect("keeps its plan");
    assert_eq!(ff_plan.shards().len(), 1, "first-fit crams the head");
    assert_eq!(ff_plan.shards()[0].board, 0);
    assert_eq!(bal_plan.shards().len(), 2, "balanced uses both boards");
    assert!(
        bal_plan.bottleneck_seconds() < 0.75 * ff_plan.bottleneck_seconds(),
        "bottleneck {} vs {}",
        bal_plan.bottleneck_seconds(),
        ff_plan.bottleneck_seconds()
    );

    // The pinned throughput claim, measured through the engines (the
    // modelled timing is input-independent, so thumbnails suffice).
    let xs: Vec<Tensor<f32>> = (0..32)
        .map(|i| {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(i);
            Tensor::from_fn(Shape4::new(1, 3, 8, 8), |_, _, _, _| {
                rng.random::<f32>() - 0.5
            })
        })
        .collect();
    let (ff_runs, ff_batch) = first_fit.infer_batch_summary(&xs).expect("batch");
    let (bal_runs, bal_batch) = balanced.infer_batch_summary(&xs).expect("batch");
    let ratio = bal_batch.throughput() / ff_batch.throughput();
    assert!(
        ratio >= 1.15,
        "balanced/first-fit batch-32 pipelined throughput = {ratio:.3}"
    );
    // Identical numerics: partitioning never touches the Q-format math.
    for (a, b) in ff_runs.iter().zip(&bal_runs) {
        assert_eq!(a.logits.as_slice(), b.logits.as_slice(), "bit-identical");
    }
    // The plans predict the same gain without running an image.
    let plan_ratio = ff_plan.batch_seconds(32, Schedule::Pipelined)
        / bal_plan.batch_seconds(32, Schedule::Pipelined);
    assert!((plan_ratio - ratio).abs() < 0.05, "{plan_ratio} vs {ratio}");
}

/// A genuinely heterogeneous rack: XC7Z020 head + the half-size
/// XC7Z010 of an Arty Z7-10. The balanced search places the heavy
/// layer2_2 + layer3_2 pair on the bigger fabric and moves layer1 to
/// the small board — first-fit would have crammed everything onto the
/// head. Plan-level only (zero numerics).
#[test]
fn balanced_puts_heavy_stages_on_the_big_fabric() {
    let spec = NetSpec::new(Variant::OdeNet, 56);
    let rack = Cluster::new(vec![ARTY_Z7_20, ARTY_Z7_10], Interconnect::GIGABIT_ETHERNET);
    let request = |partitioner: Partitioner| ClusterRequest {
        cluster: rack.clone(),
        offload: Offload::Target(OffloadTarget::AllOde),
        bn: BnMode::OnTheFly,
        ps: PsModel::Calibrated,
        pl: PlModel::default(),
        precision: PlFormat::Q16 { frac: 10 }.into(),
        schedule: Schedule::Pipelined,
        partitioner,
        replication: Replication::None,
    };
    let ff = plan_cluster(&spec, &request(Partitioner::FirstFit)).expect("plans");
    let bal = plan_cluster(&spec, &request(Partitioner::BalancedMakespan)).expect("plans");
    assert_eq!(ff.shards().len(), 1, "first-fit leaves the Z7-10 idle");
    assert_eq!(
        bal.board_of(LayerName::Layer2_2),
        Some(0),
        "heavy → big fabric"
    );
    assert_eq!(
        bal.board_of(LayerName::Layer3_2),
        Some(0),
        "heavy → big fabric"
    );
    assert_eq!(bal.board_of(LayerName::Layer1), Some(1), "light → XC7Z010");
    // The busy breakdown the search optimized is exposed on the plan.
    let busy = bal.resource_busy();
    assert_eq!(busy.len(), 3, "PS + two fabrics carry work: {busy:?}");
    let ratio =
        ff.batch_seconds(32, Schedule::Pipelined) / bal.batch_seconds(32, Schedule::Pipelined);
    assert!(ratio >= 1.15, "heterogeneous batch-32 gain = {ratio:.3}");
}

/// The heterogeneous-rack bit-identity matrix: big fabric first vs
/// second, each under both partitioners, plus a single-big-board
/// reference — sharding and partitioning must never change the logits.
#[test]
fn heterogeneous_rack_order_never_changes_logits() {
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(10);
    let net = Network::new(spec, 31);
    let q16 = PlFormat::Q16 { frac: 10 };
    let mut big = ARTY_Z7_20;
    big.bram36 *= 2;
    let reference = Engine::builder(&net)
        .board(&big)
        .precision(q16)
        .offload(Offload::Target(OffloadTarget::AllOde))
        .build()
        .expect("reference fits");
    let racks: [Vec<Board>; 2] = [vec![ARTY_Z7_20, ARTY_Z7_10], vec![ARTY_Z7_10, ARTY_Z7_20]];
    for boards in racks {
        for partitioner in [Partitioner::FirstFit, Partitioner::BalancedMakespan] {
            let engine = Engine::builder(&net)
                .cluster(Cluster::new(boards.clone(), Interconnect::GIGABIT_ETHERNET))
                .precision(q16)
                .offload(Offload::Target(OffloadTarget::AllOde))
                .partitioner(partitioner)
                .build()
                .unwrap_or_else(|e| panic!("{partitioner:?} over {boards:?}: {e}"));
            for seed in 0..2u64 {
                let x = image(seed);
                let a = engine.infer(&x).expect("cluster runs");
                let b = reference.infer(&x).expect("reference runs");
                assert_eq!(
                    a.logits.as_slice(),
                    b.logits.as_slice(),
                    "{partitioner:?}, head {}",
                    boards[0].name
                );
            }
        }
    }
}

fn any_timeline() -> impl Strategy<Value = Vec<StageTiming>> {
    prop::collection::vec((0usize..4, 0.001f64..0.5, 0.0f64..0.01), 1..8).prop_map(|stages| {
        stages
            .into_iter()
            .map(|(r, seconds, transfer_in)| StageTiming {
                resource: if r == 0 {
                    StageResource::Ps
                } else {
                    StageResource::Pl(r - 1)
                },
                layer: None,
                seconds,
                transfer_in,
                replicas: Vec::new(),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The scheduler invariants for arbitrary stage pipelines: the
    /// event-driven pipelined makespan never exceeds the additive
    /// schedule and never beats the bottleneck-resource lower bound
    /// (nor the single-image latency).
    #[test]
    fn pipelined_makespan_within_bounds(timeline in any_timeline(), images in 1usize..12) {
        let seq = sequential_makespan(&timeline, images);
        let run = pipelined_schedule(&timeline, images);
        let latency = per_image_seconds(&timeline);
        let lower = (images as f64 * bottleneck_seconds(&timeline)).max(latency);
        prop_assert!(run.makespan <= seq + 1e-9, "{} ≤ {}", run.makespan, seq);
        prop_assert!(run.makespan >= lower - 1e-9, "{} ≥ {}", run.makespan, lower);
        prop_assert_eq!(run.latencies.len(), images);
        for lat in &run.latencies {
            prop_assert!(*lat >= latency - 1e-9, "no image beats its own latency");
            prop_assert!(*lat <= run.makespan + 1e-9);
        }
    }

    /// Sequential makespan is exactly additive in the batch size.
    #[test]
    fn sequential_makespan_is_additive(timeline in any_timeline(), images in 0usize..12) {
        let one = per_image_seconds(&timeline);
        let all = sequential_makespan(&timeline, images);
        prop_assert!((all - images as f64 * one).abs() < 1e-9);
    }

    /// For random heterogeneous 2–3-board clusters, feasible targets,
    /// and either schedule, the balanced search's batch-32 makespan is
    /// never worse than first-fit's: the first-fit assignment is in
    /// the balanced search space, so losing would mean the argmin
    /// skipped a candidate.
    #[test]
    fn balanced_never_worse_than_first_fit(
        caps in prop::collection::vec(30u32..=140u32, 2..=3),
        t_idx in 0usize..8,
        wide in 0usize..2,
        sched in 0usize..2,
    ) {
        let spec = NetSpec::new(Variant::OdeNet, 56);
        let format = if wide == 1 {
            PlFormat::Q20
        } else {
            PlFormat::Q16 { frac: 10 }
        };
        let schedule = if sched == 1 {
            Schedule::Pipelined
        } else {
            Schedule::Sequential
        };
        let boards: Vec<Board> = caps
            .iter()
            .map(|&bram| {
                let mut b = ARTY_Z7_20;
                b.bram36 = bram;
                b
            })
            .collect();
        let target = OffloadTarget::ALL[t_idx];
        let request = |partitioner: Partitioner| ClusterRequest {
            cluster: Cluster::new(boards.clone(), Interconnect::GIGABIT_ETHERNET),
            offload: Offload::Target(target),
            bn: BnMode::OnTheFly,
            ps: PsModel::Calibrated,
            pl: PlModel::default(),
            precision: format.into(),
            schedule,
            partitioner,
            replication: Replication::None,
        };
        if let Ok(ff) = plan_cluster(&spec, &request(Partitioner::FirstFit)) {
            let bal = plan_cluster(&spec, &request(Partitioner::BalancedMakespan))
                .expect("first-fit feasible ⇒ the search space is non-empty");
            prop_assert_eq!(bal.target(), ff.target());
            let ff32 = ff.batch_seconds(32, schedule);
            let bal32 = bal.batch_seconds(32, schedule);
            prop_assert!(
                bal32 <= ff32 + 1e-9,
                "{:?}: balanced {} vs first-fit {}",
                schedule,
                bal32,
                ff32
            );
        }
    }
}
