//! Acceptance suite for the observability layer (ISSUE 8).
//!
//! The headline scenario: the replicate command's 3×Arty Z7-20 rack
//! (conv_x8, layer1 ×2) serving a seeded Poisson stream with tracing
//! on. Pinned: the stall-attribution metrics name the head PS as the
//! bottleneck with per-image busy equal to the plan's
//! `bottleneck_seconds`, trace-derived utilization is **bit-equal** to
//! the `ServeReport`'s, the Chrome-trace export is well-formed and
//! byte-stable (golden file), and — the zero-cost contract — every
//! scheduler output is bit-identical with tracing on or off.

use odenet_suite::prelude::*;
use proptest::prelude::*;
use zynq_sim::cluster::{
    pipelined_schedule_released, pipelined_schedule_released_traced, StageTiming,
};
use zynq_sim::serve::{serve_timeline, serve_timeline_traced};

fn two_arty() -> Cluster {
    Cluster::homogeneous(&ARTY_Z7_20, 2, Interconnect::GIGABIT_ETHERNET)
}

/// The replicated rack the `repro -- trace` command deploys: 3×Arty,
/// conv_x8, layer1 burned onto two fabrics — PL bottleneck retired
/// down to the head PS's floor.
fn replicated_rack() -> ClusterPlan {
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
    plan_cluster(
        &spec,
        &ClusterRequest {
            cluster: Cluster::homogeneous(&ARTY_Z7_20, 3, Interconnect::GIGABIT_ETHERNET),
            offload: Offload::Auto,
            bn: BnMode::OnTheFly,
            ps: PsModel::Calibrated,
            pl: PlModel { parallelism: 8 },
            precision: PlFormat::Q20.into(),
            schedule: Schedule::Pipelined,
            partitioner: Partitioner::BalancedMakespan,
            replication: Replication::Stage(LayerName::Layer1, 2),
        },
    )
    .expect("3×Arty carries ODENet-20 at Q20/conv_x8")
}

/// A two-stage toy pipeline (PS feeds a PL fabric across a modelled
/// hand-off) for the golden export.
fn toy_timeline() -> Vec<StageTiming> {
    vec![
        StageTiming {
            resource: StageResource::Ps,
            layer: None,
            seconds: 0.010,
            transfer_in: 0.0,
            replicas: Vec::new(),
        },
        StageTiming {
            resource: StageResource::Pl(0),
            layer: Some(LayerName::Layer3_2),
            seconds: 0.020,
            transfer_in: 0.001,
            replicas: Vec::new(),
        },
    ]
}

/// The acceptance scenario: a seeded Poisson serve over the replicated
/// rack, traced. The attribution metrics must (a) name the head PS as
/// the bottleneck, (b) reconcile its busy seconds with the plan's
/// steady-state `bottleneck_seconds` to the ulp, and (c) reproduce the
/// report's utilization **bit-equal** — the trace is the report's
/// audit trail, not a second estimate.
#[test]
fn replicated_rack_trace_names_the_head_ps_as_bottleneck() {
    let plan = replicated_rack();
    let req = ServeRequest {
        arrivals: ArrivalProcess::Poisson {
            rate: 0.9 / plan.bottleneck_seconds(),
        },
        images: 256,
        dispatch: Dispatch::default(),
        seed: 42,
        window: Window::default(),
    };
    let report = serve_timeline_traced(plan.timeline(), &req, true).expect("valid request");
    let trace = report.trace().expect("tracing was requested");

    assert_eq!(trace.images(), 256);
    assert_eq!(trace.horizon(), report.horizon, "bit-equal horizon");
    assert_eq!(
        trace.utilization(),
        report.utilization,
        "trace-derived utilization must be bit-equal to the report's"
    );

    let metrics = trace.metrics();
    assert_eq!(metrics.queue_peak, report.queue_peak);
    let bottleneck = metrics.bottleneck().expect("a non-empty run has one");
    assert_eq!(
        bottleneck.resource,
        StageResource::Ps,
        "layer1 ×2 retires the PL bottleneck down to the head PS"
    );
    let per_image = bottleneck.busy / 256.0;
    assert!(
        (per_image - plan.bottleneck_seconds()).abs() <= 1e-9 * plan.bottleneck_seconds(),
        "trace busy/image {per_image} vs plan bottleneck {}",
        plan.bottleneck_seconds()
    );

    // Every resource's ledger closes: busy + attributed stalls span
    // the whole horizon, and stage replication shows up as spans on
    // both layer1 fabrics.
    for r in &metrics.resources {
        let covered = r.busy + r.stall.total();
        assert!(
            (covered - metrics.horizon).abs() <= 1e-6 * metrics.horizon,
            "{:?}: busy {} + stalls {} must cover horizon {}",
            r.resource,
            r.busy,
            r.stall.total(),
            metrics.horizon
        );
    }
    let replica_spans: Vec<usize> = metrics
        .resources
        .iter()
        .filter(|r| r.resource != StageResource::Ps && r.spans > 0)
        .map(|r| r.spans)
        .collect();
    assert!(
        replica_spans.len() >= 3,
        "three fabrics carry PL spans, got {replica_spans:?}"
    );
}

/// The zero-cost contract, end to end: the traced serve returns a
/// report whose every observable field is bit-identical to the
/// untraced one — tracing reads the schedule, it never perturbs it.
#[test]
fn traced_serve_report_is_bit_identical_to_untraced() {
    let plan = replicated_rack();
    let req = ServeRequest {
        arrivals: ArrivalProcess::Poisson {
            rate: 0.9 / plan.bottleneck_seconds(),
        },
        images: 128,
        dispatch: Dispatch::default(),
        seed: 7,
        window: Window::default(),
    };
    let traced = serve_timeline_traced(plan.timeline(), &req, true).expect("valid");
    let untraced = serve_timeline(plan.timeline(), &req).expect("valid");
    assert!(untraced.trace().is_none(), "untraced runs carry no trace");
    assert_eq!(traced.images, untraced.images);
    assert_eq!(traced.batches, untraced.batches);
    assert_eq!(traced.queue_peak, untraced.queue_peak);
    assert_eq!(traced.offered_rate, untraced.offered_rate);
    assert_eq!(traced.goodput, untraced.goodput);
    assert_eq!(traced.horizon, untraced.horizon);
    assert_eq!(traced.latency_p50, untraced.latency_p50);
    assert_eq!(traced.latency_p99, untraced.latency_p99);
    assert_eq!(traced.latency_p999, untraced.latency_p999);
    assert_eq!(traced.latency_max, untraced.latency_max);
    assert_eq!(traced.utilization, untraced.utilization);
}

/// Same contract one layer down: `pipelined_schedule_released` with an
/// enabled recorder commits the identical `ServedRun` the untraced
/// wrapper does, float for float.
#[test]
fn traced_schedule_commits_identical_served_run() {
    let timeline = replicated_rack().timeline().to_vec();
    let releases: Vec<f64> = (0..64).map(|i| 0.03 * i as f64).collect();
    let plain = pipelined_schedule_released(&timeline, &releases);
    let mut rec = Recorder::enabled();
    let traced = pipelined_schedule_released_traced(&timeline, &releases, &mut rec);
    assert_eq!(plain.makespan, traced.makespan);
    assert_eq!(plain.starts, traced.starts);
    assert_eq!(plain.finishes, traced.finishes);
    let trace = rec.finish();
    assert_eq!(trace.horizon(), traced.makespan);
    assert_eq!(trace.stages.len(), 64 * timeline.len());
}

/// The Chrome-trace export of one seeded toy serve, byte for byte
/// against the committed golden file (regenerate with
/// `TRACE_GOLDEN=write cargo test -q --test trace golden`). Virtual
/// time makes the export machine-independent, so the snapshot pins
/// the serializer itself: event order, timestamp formatting, track
/// naming.
#[test]
fn golden_chrome_export_is_byte_stable() {
    let timeline = toy_timeline();
    let req = ServeRequest {
        arrivals: ArrivalProcess::Trace(vec![0.0, 0.005, 0.01, 0.04, 0.002, 0.03]),
        images: 6,
        dispatch: Dispatch::default(),
        seed: 0,
        window: Window::default(),
    };
    let report = serve_timeline_traced(&timeline, &req, true).expect("valid");
    let mut trace = report.trace().expect("traced").clone();
    trace.set_broadcast_seconds(0.0002);
    let json = trace.to_chrome_json();

    let events = check_chrome_json(&json).expect("well-formed Chrome JSON");
    assert!(events > 0);
    // Byte-stable across repeated exports of the same run.
    assert_eq!(json, trace.to_chrome_json());

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace.json");
    if std::env::var_os("TRACE_GOLDEN").is_some_and(|v| v == "write") {
        std::fs::write(path, &json).expect("golden written");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file exists");
    assert_eq!(json, golden, "export drifted from tests/golden/trace.json");
}

/// Corrupting the export is caught: the checker rejects a truncated
/// stream (unbalanced B/E) and out-of-order timestamps.
#[test]
fn checker_rejects_corrupted_exports() {
    let timeline = toy_timeline();
    let req = ServeRequest {
        arrivals: ArrivalProcess::Trace(vec![0.01, 0.02]),
        images: 4,
        dispatch: Dispatch::default(),
        seed: 1,
        window: Window::default(),
    };
    let report = serve_timeline_traced(&timeline, &req, true).expect("valid");
    let json = report.trace().expect("traced").to_chrome_json();
    let begin = json
        .lines()
        .find(|l| l.contains("\"ph\":\"B\""))
        .expect("has a begin event")
        .trim_end_matches(',');
    let truncated = json.replacen(begin, &format!("{begin},\n{begin}"), 1);
    assert!(check_chrome_json(&truncated).is_err(), "duplicate B caught");
}

/// The engine surface: `EngineBuilder::trace(true)` makes `serve`
/// attach a trace to the report and retain it on `last_trace()`,
/// stamped with the plan's broadcast cost; tracing off (the default)
/// records nothing.
#[test]
fn engine_trace_flag_exposes_last_trace() {
    let spec = NetSpec::new(Variant::OdeNet, 20).with_classes(100);
    let net = Network::new(spec, 42);
    let engine = Engine::builder(&net)
        .cluster(two_arty())
        .schedule(Schedule::Pipelined)
        .trace(true)
        .build()
        .expect("builds");
    let plan = engine.cluster_plan().expect("cluster engines keep a plan");
    let req = ServeRequest {
        arrivals: ArrivalProcess::Poisson {
            rate: 0.5 / plan.bottleneck_seconds(),
        },
        images: 32,
        dispatch: Dispatch::default(),
        seed: 3,
        window: Window::default(),
    };
    let report = engine.serve(&req).expect("valid request");
    let trace = report.trace().expect("trace(true) engines trace serves");
    assert_eq!(trace.images(), 32);
    assert_eq!(
        engine.last_trace().as_ref(),
        Some(trace),
        "last_trace retains the serve's trace"
    );
    assert_eq!(
        trace.broadcast_seconds(),
        engine.cluster_plan().expect("plan").broadcast_seconds(),
        "the engine stamps the plan's broadcast cost"
    );

    // Batched inference through the pipelined cluster backend traces
    // too — and logits stay bit-identical to the untraced engine's.
    let image = Tensor::<f32>::zeros(Shape4::new(1, 3, 32, 32));
    let (runs, _) = engine
        .infer_batch_summary(&[image.clone(), image.clone()])
        .expect("batch");
    let batch_trace = engine.last_trace().expect("batch runs retrace");
    assert_eq!(batch_trace.images(), 2);

    let untraced = Engine::builder(&net)
        .cluster(two_arty())
        .schedule(Schedule::Pipelined)
        .build()
        .expect("builds");
    assert!(untraced.last_trace().is_none());
    let (plain, _) = untraced
        .infer_batch_summary(&[image.clone(), image])
        .expect("batch");
    assert!(
        untraced.last_trace().is_none(),
        "tracing off records nothing"
    );
    for (a, b) in runs.iter().zip(&plain) {
        assert_eq!(a.logits, b.logits, "tracing never touches the numerics");
    }
    assert!(untraced.serve(&req).expect("valid").trace().is_none());
}

fn any_timeline() -> impl Strategy<Value = Vec<StageTiming>> {
    prop::collection::vec((0usize..4, 0.001f64..0.5, 0.0f64..0.01), 1..8).prop_map(|stages| {
        stages
            .into_iter()
            .map(|(r, seconds, transfer_in)| StageTiming {
                resource: if r == 0 {
                    StageResource::Ps
                } else {
                    StageResource::Pl(r - 1)
                },
                layer: None,
                seconds,
                transfer_in,
                replicas: Vec::new(),
            })
            .collect()
    })
}

fn any_gaps() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..0.4, 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Trace events reconcile with the scheduler's aggregates over any
    /// pipeline × release pattern: the horizon is the makespan, the
    /// last span ends exactly there, per-resource busy is the sum of
    /// that resource's spans, utilization matches the timeline's
    /// per-image busy table bit-for-bit, and the stall ledger closes
    /// (busy + upstream + gate + no-work = horizon).
    #[test]
    fn trace_reconciles_with_schedule_aggregates(
        timeline in any_timeline(),
        gaps in any_gaps(),
    ) {
        let mut at = 0.0f64;
        let releases: Vec<f64> = gaps.iter().map(|g| { at += g; at }).collect();
        let mut rec = Recorder::enabled();
        let run = pipelined_schedule_released_traced(&timeline, &releases, &mut rec);
        let trace = rec.finish();

        prop_assert_eq!(trace.horizon(), run.makespan);
        prop_assert_eq!(trace.images(), releases.len());
        let last_end = trace
            .stages
            .iter()
            .map(|s| s.end)
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(last_end, run.makespan, "the last span ends at the makespan");

        let expected: Vec<(StageResource, f64)> = resource_busy(&timeline)
            .into_iter()
            .map(|(r, busy)| (r, busy * releases.len() as f64 / run.makespan))
            .collect();
        prop_assert_eq!(trace.utilization(), expected, "bit-equal utilization");

        let metrics = trace.metrics();
        prop_assert_eq!(metrics.horizon, run.makespan);
        for r in &metrics.resources {
            let spans_sum: f64 = trace
                .stages
                .iter()
                .filter(|s| s.resource == r.resource)
                .map(|s| s.end - s.start)
                .sum();
            prop_assert!(
                (r.busy - spans_sum).abs() <= 1e-9,
                "busy {} vs span sum {}", r.busy, spans_sum
            );
            let covered = r.busy + r.stall.total();
            prop_assert!(
                (covered - metrics.horizon).abs() <= 1e-6 * metrics.horizon.max(1.0),
                "{:?}: busy {} + stalls {} vs horizon {}",
                r.resource, r.busy, r.stall.total(), metrics.horizon
            );
            prop_assert!(r.stall.upstream >= 0.0 && r.stall.gate >= 0.0 && r.stall.no_work >= 0.0);
        }
    }

    /// The serve-layer trace reconciles with its report over any
    /// pipeline × arrival trace: queue-depth peak equals the admission
    /// queue's **exactly**, dispatch events count the batches, arrivals
    /// count the images, utilization and horizon are bit-equal, and
    /// the Chrome export always validates.
    #[test]
    fn serve_trace_reconciles_with_report(
        timeline in any_timeline(),
        gaps in any_gaps(),
    ) {
        if gaps.iter().sum::<f64>() <= 0.0 {
            return Ok(());
        }
        let req = ServeRequest {
            arrivals: ArrivalProcess::Trace(gaps),
            images: 48,
            dispatch: Dispatch::default(),
            seed: 5,
            window: Window::default(),
        };
        let report = serve_timeline_traced(&timeline, &req, true).expect("valid");
        let trace = report.trace().expect("traced");

        prop_assert_eq!(trace.horizon(), report.horizon);
        prop_assert_eq!(trace.utilization(), report.utilization.clone());
        let metrics = trace.metrics();
        prop_assert_eq!(metrics.queue_peak, report.queue_peak, "queue peak matches exactly");
        prop_assert_eq!(trace.dispatches.len(), report.batches);
        let dispatched: usize = trace.dispatches.iter().map(|d| d.images).sum();
        prop_assert_eq!(dispatched, report.images);
        let arrivals = trace.queue.iter().filter(|e| e.delta > 0).count();
        prop_assert_eq!(arrivals, report.images);

        let json = trace.to_chrome_json();
        let events = check_chrome_json(&json);
        prop_assert!(events.is_ok(), "export must validate: {:?}", events);
    }
}
