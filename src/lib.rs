//! # odenet-suite — reproducing "Accelerating ODE-Based Neural Networks on Low-Cost FPGAs"
//!
//! This umbrella crate re-exports the whole stack and hosts the runnable
//! examples and cross-crate integration tests. The pieces:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`qfixed`] | Q·m.n fixed-point arithmetic (the PL's 32-bit Q20 format) |
//! | [`tensor`] | NCHW tensors; conv/BN/ReLU/pool/FC kernels, f32 + Q20 |
//! | [`odesolve`] | Euler/RK2/RK4/RKF45 solvers, adjoint + unrolled gradients |
//! | [`rodenet`] | the paper's architectures, training, parameter accounting |
//! | [`zynq_sim`] | PYNQ-Z2 substrate simulator: resources, cycles, the `Engine` |
//! | [`cifar_data`] | CIFAR-100 loader + SynthCIFAR procedural stand-in |
//!
//! Deployment goes through [`zynq_sim::engine::Engine`]: configure and
//! validate once, then serve single or batched inference (also see
//! `examples/quickstart.rs`):
//!
//! ```
//! use odenet_suite::prelude::*;
//!
//! let spec = NetSpec::new(Variant::ROdeNet3, 20).with_classes(10);
//! let net = Network::new(spec, 7);
//! let engine = Engine::builder(&net)
//!     .board(&PYNQ_Z2)
//!     .offload(Offload::Auto)
//!     .build()
//!     .expect("placement fits the PYNQ-Z2");
//! assert_eq!(engine.target(), OffloadTarget::Layer32);
//!
//! let image = Tensor::<f32>::zeros(Shape4::new(1, 3, 32, 32));
//! let run = engine.infer(&image).expect("CIFAR-shaped input");
//! assert_eq!(run.logits.shape().c, 10);
//! assert!(run.total_seconds() < 1.0);
//!
//! // Batched serving amortizes the one-time planning + quantization.
//! let runs = engine.infer_batch(&[image.clone(), image]).expect("batch");
//! assert_eq!(BatchSummary::from_runs(&runs).images, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cifar_data;
pub use odesolve;
pub use qfixed;
pub use rodenet;
pub use tensor;
pub use zynq_sim;

/// One-stop imports for applications.
pub mod prelude {
    pub use cifar_data::synth::{generate, generate_split, SynthConfig};
    pub use cifar_data::Dataset;
    pub use odesolve::{ode_solve, ClosureField, Method, SolveOpts};
    pub use qfixed::{QFormat, Q20};
    pub use rodenet::train::{evaluate, train_epochs, TrainConfig};
    pub use rodenet::{
        BnMode, GradMode, LayerName, NetSpec, Network, QuantNetwork, Variant, PAPER_DEPTHS,
    };
    pub use tensor::{Shape4, Tensor};
    pub use zynq_sim::cluster::{
        plan_cluster, Cluster, ClusterPlan, ClusterRequest, Interconnect, Schedule, StageResource,
    };
    pub use zynq_sim::engine::{
        Backend, BackendKind, BatchSummary, Engine, EngineBuilder, EngineError, Offload, RunReport,
    };
    pub use zynq_sim::fault::{
        serve_faulted, AvailabilityReport, FailoverRecord, FaultEvent, FaultPlan, HealthMonitor,
        HealthPolicy,
    };
    pub use zynq_sim::partition::{partition_placement, resource_busy, Partitioner};
    pub use zynq_sim::plan::{plan_deployment, DeploymentPlan, PlFormat, PlanRequest};
    pub use zynq_sim::planner::{plan_offload, OffloadTarget};
    pub use zynq_sim::precision::{Precision, StageFormats};
    pub use zynq_sim::replica::{ReplicaPlan, Replication};
    pub use zynq_sim::serve::{
        ArrivalProcess, Dispatch, LoadPoint, LoadSweep, ServeReport, ServeRequest, Window,
        WindowReport,
    };
    pub use zynq_sim::timing::{paper_row, PlModel, PsModel};
    pub use zynq_sim::trace::{
        check_chrome_json, FaultTraceEvent, Metrics, Recorder, StallBreakdown, Trace,
    };
    pub use zynq_sim::{
        ode_block_resources, HybridRun, OdeBlockAccel, ARTY_Z7_10, ARTY_Z7_20, PYNQ_Z2,
    };
    #[allow(deprecated)]
    pub use zynq_sim::{run_hybrid, run_hybrid_with};
}
